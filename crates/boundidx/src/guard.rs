//! Epoch-guarded slot: the concurrency half of the bound-index freshness
//! protocol, factored out so it can be model-checked in isolation.
//!
//! The protocol (see `DESIGN.md`, "Appendix: the mutation-epoch protocol"):
//! the storage engine bumps a monotone epoch on every catalog mutation; an
//! index value is stamped with the epoch captured *before* the catalog
//! snapshot it was built from was read; a reader serves the value only when
//! its stamp equals the engine's current epoch. A mutation racing the
//! snapshot leaves the stamp *behind* the real epoch (never ahead), so the
//! worst case is a spurious re-sync — a stale value is never served.
//!
//! [`EpochSlot`] packages that invariant: the only read access is
//! [`EpochSlot::with_fresh`], which hands the closure `Some(&T)` exactly
//! when the stamp matches the epoch the caller observed. Writers go through
//! [`EpochSlot::write`], which holds the slot exclusively for the whole
//! capture-epoch → read-catalog → install sequence.
//!
//! The slot is built on the `mmdb_conc::sync` facade, so
//! `crates/conc/tests/model_boundidx.rs` can exhaustively interleave
//! readers and writers and assert the no-stale-serve invariant.

use mmdb_conc::sync::{RwLock, RwLockWriteGuard};

/// A value stamped with the storage epoch of the catalog snapshot it
/// reflects.
pub trait EpochStamped {
    /// The epoch this value was last reconciled to.
    fn stamp(&self) -> u64;
}

/// A shared slot holding at most one epoch-stamped value, readable only
/// while fresh.
#[derive(Debug, Default)]
pub struct EpochSlot<T> {
    inner: RwLock<Option<T>>,
}

impl<T: EpochStamped> EpochSlot<T> {
    /// An empty slot.
    pub fn new() -> Self {
        EpochSlot {
            inner: RwLock::new(None),
        }
    }

    /// Runs `f` with `Some(&value)` when the slot holds a value whose stamp
    /// equals `epoch` (the engine epoch the caller just observed), and with
    /// `None` when the slot is empty or stale. The read lock is held for the
    /// duration of `f`, so a concurrent re-sync cannot swap the value out
    /// from under the closure — it can only run after, stamping a newer
    /// epoch.
    pub fn with_fresh<R>(&self, epoch: u64, f: impl FnOnce(Option<&T>) -> R) -> R {
        let guard = self.inner.read();
        f(guard.as_ref().filter(|v| v.stamp() == epoch))
    }

    /// Like [`EpochSlot::with_fresh`] but returns `None` instead of calling
    /// the closure when no fresh value is present.
    pub fn serve_fresh<R>(&self, epoch: u64, f: impl FnOnce(&T) -> R) -> Option<R> {
        let guard = self.inner.read();
        guard.as_ref().filter(|v| v.stamp() == epoch).map(f)
    }

    /// Runs `f` over the slot's current contents **regardless of
    /// freshness** — the stamp is not checked. For observability only
    /// (staleness accounting must read a stale value to measure its lag);
    /// never a substitute for [`EpochSlot::with_fresh`] when serving.
    pub fn peek<R>(&self, f: impl FnOnce(Option<&T>) -> R) -> R {
        f(self.inner.read().as_ref())
    }

    /// Exclusive access for build / re-sync / invalidate. Callers must
    /// capture the engine epoch *before* reading any catalog state they
    /// install, so the stamp can only lag a racing mutation, never lead it.
    pub fn write(&self) -> RwLockWriteGuard<'_, Option<T>> {
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stamped(u64);
    impl EpochStamped for Stamped {
        fn stamp(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn empty_slot_serves_nothing() {
        let slot: EpochSlot<Stamped> = EpochSlot::new();
        assert!(slot.with_fresh(0, |v| v.is_none()));
        assert_eq!(slot.serve_fresh(0, |v| v.0), None);
    }

    #[test]
    fn fresh_value_served_stale_value_refused() {
        let slot = EpochSlot::new();
        *slot.write() = Some(Stamped(3));
        assert_eq!(slot.serve_fresh(3, |v| v.0), Some(3));
        // Engine moved on: the stamped value is stale and must be refused.
        assert_eq!(slot.serve_fresh(4, |v| v.0), None);
        assert!(slot.with_fresh(4, |v| v.is_none()));
    }

    #[test]
    fn resync_restores_service() {
        let slot = EpochSlot::new();
        *slot.write() = Some(Stamped(1));
        assert_eq!(slot.serve_fresh(2, |v| v.0), None);
        if let Some(v) = slot.write().as_mut() {
            v.0 = 2;
        }
        assert_eq!(slot.serve_fresh(2, |v| v.0), Some(2));
    }
}

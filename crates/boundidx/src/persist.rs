//! Warm-start persistence for [`BoundIndex`]: one versioned, CRC-validated
//! segment file per rule profile under `<data-dir>/boundidx/`.
//!
//! The file stores the memoized per-image bounds vectors (exact `u64`
//! triples, so the rebuilt fraction intervals are bit-identical to the
//! resident ones) plus the reference edges and the synced mutation epoch.
//! Load reassembles the per-bin sorted-endpoint arrays with one bulk sort
//! per bin — orders of magnitude cheaper than re-walking every edit
//! sequence — and stamps the result with the persisted epoch so the
//! existing freshness protocol decides what happens next:
//!
//! * stamp == engine epoch → the index is served immediately (warm start);
//! * stamp <  engine epoch → the next indexed query takes the *incremental*
//!   sync path over the already-resident entries, not a cold build;
//! * stamp >  engine epoch → the file describes a future the recovered
//!   catalog never reached (snapshot rollback); the caller must discard it.
//!
//! Writes go to a temp file and rename into place, so a crash mid-persist
//! leaves the previous file intact; a torn or corrupt file fails the CRC
//! and is treated as absent (warm start is an optimization, never a
//! correctness dependency).

use crate::BoundIndex;
use mmdb_durable::crc32;
use mmdb_editops::ImageId;
use mmdb_rules::{BoundRange, RuleProfile};
use mmdb_telemetry::{counter, histogram};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Magic prefix of an index segment file.
pub const INDEX_MAGIC: [u8; 8] = *b"MMDBIDX1";

/// The format version stamped into index files — tracks the durable layer's
/// format so "can read the data dir" implies "can read its warm indexes".
pub const INDEX_FORMAT_VERSION: u32 = mmdb_durable::DURABLE_FORMAT_VERSION;

/// File name of one profile's persisted index (`<label>.idx`).
pub fn index_file_name(profile: RuleProfile) -> String {
    format!("{}.idx", profile.label())
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes `idx` into `<dir>/<label>.idx` atomically (temp file +
/// rename). Creates `dir` if needed. Returns the final path.
pub fn save(idx: &BoundIndex, dir: &Path) -> io::Result<PathBuf> {
    let started = Instant::now();
    std::fs::create_dir_all(dir)?;
    let body = encode(idx);
    let path = dir.join(index_file_name(idx.profile()));
    let tmp = path.with_extension("idx.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all(); // make the rename itself durable (best effort)
    }
    counter!("mmdb_boundidx_persist_total").inc();
    counter!("mmdb_boundidx_persist_bytes_total").add(body.len() as u64);
    histogram!("mmdb_boundidx_persist_seconds").observe(started.elapsed());
    Ok(path)
}

/// Loads the persisted index for `profile` from `dir`, validating magic,
/// version, CRC, profile label, and bin width. `Ok(None)` when no file
/// exists; `Err` when one exists but cannot be trusted (torn write, version
/// skew, quantizer change) — callers discard it and fall back to a cold
/// build.
pub fn load(dir: &Path, profile: RuleProfile, bin_count: usize) -> io::Result<Option<BoundIndex>> {
    let started = Instant::now();
    let path = dir.join(index_file_name(profile));
    let mut bytes = Vec::new();
    match std::fs::File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    let idx = decode(&bytes, profile, bin_count)?;
    counter!("mmdb_boundidx_warm_loads_total").inc();
    histogram!("mmdb_boundidx_load_seconds").observe(started.elapsed());
    Ok(Some(idx))
}

/// Removes the persisted index file for `profile`, if any — used when the
/// file's epoch is ahead of the recovered catalog (snapshot rollback made
/// its contents describe images that no longer exist).
pub fn discard(dir: &Path, profile: RuleProfile) -> io::Result<()> {
    match std::fs::remove_file(dir.join(index_file_name(profile))) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

fn encode(idx: &BoundIndex) -> Vec<u8> {
    let entries = idx.export_entries();
    let label = idx.profile().label().as_bytes();
    let mut out = Vec::with_capacity(64 + entries.len() * 32);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&INDEX_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(label.len() as u16).to_le_bytes());
    out.extend_from_slice(label);
    out.extend_from_slice(&idx.synced_epoch().to_le_bytes());
    out.extend_from_slice(&(idx.bin_count() as u32).to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (id, bounds, refs) in entries {
        out.extend_from_slice(&id.raw().to_le_bytes());
        out.extend_from_slice(&(refs.len() as u32).to_le_bytes());
        for r in refs {
            out.extend_from_slice(&r.raw().to_le_bytes());
        }
        for b in bounds {
            out.extend_from_slice(&b.min.to_le_bytes());
            out.extend_from_slice(&b.max.to_le_bytes());
            out.extend_from_slice(&b.total.to_le_bytes());
        }
    }
    let crc = crc32(&out[INDEX_MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode(bytes: &[u8], profile: RuleProfile, bin_count: usize) -> io::Result<BoundIndex> {
    let mut c = Cursor::new(bytes);
    if c.take(INDEX_MAGIC.len())? != INDEX_MAGIC {
        return Err(corrupt("bad index file magic"));
    }
    if bytes.len() < INDEX_MAGIC.len() + 4 {
        return Err(corrupt("index file truncated"));
    }
    let body = &bytes[INDEX_MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(corrupt("index file checksum mismatch"));
    }
    let version = c.u32()?;
    if version != INDEX_FORMAT_VERSION {
        return Err(corrupt(format!(
            "index format version {version} (this build reads {INDEX_FORMAT_VERSION})"
        )));
    }
    let label_len = c.u16()? as usize;
    let label = c.take(label_len)?;
    if label != profile.label().as_bytes() {
        return Err(corrupt("index file is for a different rule profile"));
    }
    let epoch = c.u64()?;
    let width = c.u32()? as usize;
    if width != bin_count {
        return Err(corrupt(format!(
            "index has {width} bins, quantizer has {bin_count}"
        )));
    }
    let count = c.u64()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let id = ImageId::new(c.u64()?);
        let ref_count = c.u32()? as usize;
        let mut refs = Vec::with_capacity(ref_count.min(1 << 16));
        for _ in 0..ref_count {
            refs.push(ImageId::new(c.u64()?));
        }
        let mut bounds = Vec::with_capacity(width);
        for _ in 0..width {
            let (min, max, total) = (c.u64()?, c.u64()?, c.u64()?);
            if min > max || max > total {
                return Err(corrupt("bound triple violates min <= max <= total"));
            }
            bounds.push(BoundRange { min, max, total });
        }
        entries.push((id, bounds, refs));
    }
    if c.pos != bytes.len() - 4 {
        return Err(corrupt("trailing bytes after last index entry"));
    }
    Ok(BoundIndex::assemble(profile, bin_count, epoch, entries))
}

/// Minimal bounds-checked little-endian reader over the file bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("index file truncated"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_rules::ColorRangeQuery;

    fn sample_index(epoch: u64) -> BoundIndex {
        let entries = vec![
            (
                ImageId::new(1),
                vec![
                    BoundRange::exact(50, 100),
                    BoundRange {
                        min: 0,
                        max: 30,
                        total: 100,
                    },
                ],
                vec![],
            ),
            (
                ImageId::new(7),
                vec![
                    BoundRange {
                        min: 10,
                        max: 90,
                        total: 100,
                    },
                    BoundRange::exact(0, 100),
                ],
                vec![ImageId::new(1)],
            ),
        ];
        BoundIndex::assemble(RuleProfile::Conservative, 2, epoch, entries)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boundidx_persist_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn round_trip_preserves_lookups_epoch_and_refs() {
        let dir = tmp_dir("roundtrip");
        let idx = sample_index(42);
        save(&idx, &dir).unwrap();
        let back = load(&dir, RuleProfile::Conservative, 2).unwrap().unwrap();
        assert_eq!(back.synced_epoch(), 42);
        assert_eq!(back.len(), 2);
        for bin in 0..2 {
            for (lo, hi) in [(0.0, 1.0), (0.0, 0.2), (0.4, 0.6), (0.95, 1.0)] {
                let q = ColorRangeQuery::new(bin, lo, hi);
                let mut a = idx.lookup(&q).ids;
                let mut b = back.lookup(&q).ids;
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "bin {bin} [{lo},{hi}]");
            }
        }
        // Reference edges survive: invalidating #1 drops its dependent #7.
        let mut back = back;
        assert_eq!(back.invalidate(ImageId::new(1)), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_none_and_discard_is_idempotent() {
        let dir = tmp_dir("missing");
        assert!(load(&dir, RuleProfile::Conservative, 2).unwrap().is_none());
        discard(&dir, RuleProfile::Conservative).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_version_skew_and_mismatches_are_rejected() {
        let dir = tmp_dir("corrupt");
        let path = save(&sample_index(7), &dir).unwrap();

        // Quantizer width change.
        assert!(load(&dir, RuleProfile::Conservative, 3).is_err());
        // Wrong profile: the file name differs, so it reads as absent...
        assert!(load(&dir, RuleProfile::PaperTable1, 2).unwrap().is_none());
        // ...and a renamed file fails the embedded label check.
        std::fs::copy(&path, dir.join(index_file_name(RuleProfile::PaperTable1))).unwrap();
        assert!(load(&dir, RuleProfile::PaperTable1, 2).is_err());

        // Flip one payload byte: CRC catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&dir, RuleProfile::Conservative, 2).is_err());

        // Truncation (torn write) is rejected too.
        let good = {
            save(&sample_index(7), &dir).unwrap();
            std::fs::read(&path).unwrap()
        };
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(load(&dir, RuleProfile::Conservative, 2).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Per-bin sorted-endpoint interval lists with galloping overlap search.
//!
//! For one histogram bin, every image contributes a fraction interval
//! `[lo, hi]` (exact histogram value for binary images, BOUNDS range for
//! edited ones). A range query `[pct_min, pct_max]` must emit exactly the
//! intervals that overlap it: `lo <= pct_max && hi >= pct_min`. Keeping two
//! orderings of the same entries — ascending by `lo` and descending by
//! `hi` — turns each half of that conjunction into a *prefix*:
//!
//! * the entries with `lo <= pct_max` are a prefix of `by_lo`;
//! * the entries with `hi >= pct_min` are a prefix of `by_hi`.
//!
//! The overlap set is the intersection of the two prefixes, so scanning the
//! *smaller* prefix and filtering on the other endpoint visits
//! `min(|prefix_lo|, |prefix_hi|)` entries instead of all `N`. Prefix
//! lengths are found by galloping (exponential probe + binary search), which
//! costs `O(log p)` for a prefix of length `p` — selective queries never pay
//! a full `O(log N)` let alone `O(N)`.

use mmdb_editops::ImageId;
use std::cmp::Ordering;

/// One image's fraction interval in one bin.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalEntry {
    /// Lower fraction bound (`BOUNDmin / imagesize`).
    pub lo: f64,
    /// Upper fraction bound (`BOUNDmax / imagesize`).
    pub hi: f64,
    /// The image owning this interval.
    pub id: ImageId,
}

fn lo_order(a: &IntervalEntry, b: &IntervalEntry) -> Ordering {
    a.lo.total_cmp(&b.lo).then_with(|| a.id.cmp(&b.id))
}

fn hi_order(a: &IntervalEntry, b: &IntervalEntry) -> Ordering {
    b.hi.total_cmp(&a.hi).then_with(|| a.id.cmp(&b.id))
}

/// Length of the leading run of indices for which `pred` holds, found by
/// galloping. `pred` must be prefix-monotone: once false, false forever.
fn gallop_prefix(len: usize, pred: impl Fn(usize) -> bool) -> usize {
    if len == 0 || !pred(0) {
        return 0;
    }
    // Exponential probe: find a false index (or run off the end).
    let mut bound = 1;
    while bound < len && pred(bound) {
        bound <<= 1;
    }
    if bound >= len && pred(len - 1) {
        return len;
    }
    // Invariant: pred(lo) is true, pred(hi) is false.
    let mut lo = bound >> 1;
    let mut hi = bound.min(len - 1);
    if pred(hi) {
        return hi + 1;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Linear merge of a sorted resident run with a sorted batch under `cmp`.
/// Stable for the resident run (ties keep resident entries first), matching
/// what repeated [`BinIntervals::insert`] calls would produce.
fn merge_sorted(
    resident: Vec<IntervalEntry>,
    batch: &[IntervalEntry],
    cmp: fn(&IntervalEntry, &IntervalEntry) -> Ordering,
) -> Vec<IntervalEntry> {
    let mut out = Vec::with_capacity(resident.len() + batch.len());
    let mut b = batch.iter().copied().peekable();
    for r in resident {
        while let Some(&n) = b.peek() {
            if cmp(&n, &r) == Ordering::Less {
                out.push(n);
                b.next();
            } else {
                break;
            }
        }
        out.push(r);
    }
    out.extend(b);
    out
}

/// The interval set of one histogram bin, maintained in both endpoint
/// orders.
#[derive(Clone, Debug, Default)]
pub struct BinIntervals {
    by_lo: Vec<IntervalEntry>,
    by_hi: Vec<IntervalEntry>,
}

impl BinIntervals {
    /// Bulk construction: sorts once per ordering instead of inserting
    /// entry by entry.
    pub fn from_entries(entries: Vec<IntervalEntry>) -> Self {
        let mut by_lo = entries;
        let mut by_hi = by_lo.clone();
        by_lo.sort_unstable_by(lo_order);
        by_hi.sort_unstable_by(hi_order);
        BinIntervals { by_lo, by_hi }
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.by_lo.len()
    }

    /// True when no interval is stored.
    pub fn is_empty(&self) -> bool {
        self.by_lo.is_empty()
    }

    /// Merges a batch of intervals into both orders in one `O(n + m log m)`
    /// pass — sort the batch, then linear-merge with the resident run.
    /// Entry-by-entry [`BinIntervals::insert`] shifts the vector tail per
    /// entry, which turns a large catch-up (warm-started index syncing a
    /// replayed WAL tail) into quadratic memmove traffic.
    pub fn insert_batch(&mut self, mut batch: Vec<IntervalEntry>) {
        match batch.len() {
            0 => {}
            1 => self.insert(batch[0]),
            _ => {
                batch.sort_unstable_by(lo_order);
                self.by_lo = merge_sorted(std::mem::take(&mut self.by_lo), &batch, lo_order);
                batch.sort_unstable_by(hi_order);
                self.by_hi = merge_sorted(std::mem::take(&mut self.by_hi), &batch, hi_order);
            }
        }
    }

    /// Inserts one interval, keeping both orders. `O(n)` worst case (vector
    /// shift) — incremental sync churn is small; bulk build uses
    /// [`BinIntervals::from_entries`].
    pub fn insert(&mut self, entry: IntervalEntry) {
        let pos = self
            .by_lo
            .partition_point(|e| lo_order(e, &entry) == Ordering::Less);
        self.by_lo.insert(pos, entry);
        let pos = self
            .by_hi
            .partition_point(|e| hi_order(e, &entry) == Ordering::Less);
        self.by_hi.insert(pos, entry);
    }

    /// Removes the interval previously inserted for `id`. The caller passes
    /// the stored `(lo, hi)` back in, so the binary-search keys are
    /// bit-identical to the resident entry.
    pub fn remove(&mut self, entry: IntervalEntry) -> bool {
        let pos = self
            .by_lo
            .partition_point(|e| lo_order(e, &entry) == Ordering::Less);
        let Some(found) = self.by_lo.get(pos) else {
            return false;
        };
        if found.id != entry.id {
            return false;
        }
        self.by_lo.remove(pos);
        let pos = self
            .by_hi
            .partition_point(|e| hi_order(e, &entry) == Ordering::Less);
        debug_assert_eq!(self.by_hi[pos].id, entry.id, "endpoint orders diverged");
        self.by_hi.remove(pos);
        true
    }

    /// Emits the ids of every interval overlapping `[pct_min, pct_max]`
    /// into `out` and returns how many entries were scanned (the smaller
    /// prefix length) — the index-hit count for telemetry.
    pub fn overlapping(&self, pct_min: f64, pct_max: f64, out: &mut Vec<ImageId>) -> usize {
        let n_lo = gallop_prefix(self.by_lo.len(), |i| self.by_lo[i].lo <= pct_max);
        let n_hi = gallop_prefix(self.by_hi.len(), |i| self.by_hi[i].hi >= pct_min);
        if n_lo.min(n_hi) == 0 {
            return 0;
        }
        if n_lo <= n_hi {
            for e in &self.by_lo[..n_lo] {
                if e.hi >= pct_min {
                    out.push(e.id);
                }
            }
            n_lo
        } else {
            for e in &self.by_hi[..n_hi] {
                if e.lo <= pct_max {
                    out.push(e.id);
                }
            }
            n_hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lo: f64, hi: f64, id: u64) -> IntervalEntry {
        IntervalEntry {
            lo,
            hi,
            id: ImageId::new(id),
        }
    }

    fn brute_force(entries: &[IntervalEntry], pct_min: f64, pct_max: f64) -> Vec<ImageId> {
        let mut v: Vec<ImageId> = entries
            .iter()
            .filter(|e| e.lo <= pct_max && e.hi >= pct_min)
            .map(|e| e.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn gallop_prefix_matches_linear_scan() {
        for len in 0..40usize {
            for cut in 0..=len {
                let got = gallop_prefix(len, |i| i < cut);
                assert_eq!(got, cut, "len={len} cut={cut}");
            }
        }
    }

    #[test]
    fn overlap_agrees_with_brute_force() {
        // Deterministic xorshift interval soup, including exact (lo == hi)
        // and full-width intervals.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        for id in 0..200u64 {
            let a = next();
            let b = next();
            let (lo, hi) = if id % 5 == 0 {
                (a, a) // exact interval
            } else {
                (a.min(b), a.max(b))
            };
            entries.push(entry(lo, hi, id));
        }
        let bin = BinIntervals::from_entries(entries.clone());
        for _ in 0..200 {
            let a = next();
            let b = next();
            let (qmin, qmax) = (a.min(b), a.max(b));
            let mut got = Vec::new();
            let scanned = bin.overlapping(qmin, qmax, &mut got);
            got.sort_unstable();
            let want = brute_force(&entries, qmin, qmax);
            assert_eq!(got, want, "query [{qmin}, {qmax}]");
            assert!(scanned >= got.len());
            assert!(scanned <= entries.len());
        }
        // Degenerate queries.
        let mut got = Vec::new();
        bin.overlapping(0.0, 1.0, &mut got);
        got.sort_unstable();
        assert_eq!(got, brute_force(&entries, 0.0, 1.0));
    }

    #[test]
    fn incremental_insert_remove_matches_bulk() {
        let entries = vec![
            entry(0.1, 0.4, 1),
            entry(0.0, 0.0, 2),
            entry(0.35, 0.9, 3),
            entry(0.2, 0.2, 4),
            entry(0.5, 1.0, 5),
        ];
        let bulk = BinIntervals::from_entries(entries.clone());
        let mut inc = BinIntervals::default();
        for &e in &entries {
            inc.insert(e);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        bulk.overlapping(0.15, 0.45, &mut a);
        inc.overlapping(0.15, 0.45, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        assert!(inc.remove(entry(0.35, 0.9, 3)));
        assert!(!inc.remove(entry(0.35, 0.9, 3)), "double remove");
        assert_eq!(inc.len(), 4);
        let mut after = Vec::new();
        inc.overlapping(0.0, 1.0, &mut after);
        assert!(!after.contains(&ImageId::new(3)));
    }

    #[test]
    fn batch_insert_matches_entry_by_entry() {
        // Deterministic soup split into a resident set and a batch; the
        // merged bin must answer queries identically to one built by
        // per-entry inserts (and to bulk construction).
        let mut state = 0x0dd5_eed5_1234_4321u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        for id in 0..150u64 {
            let a = next();
            let b = next();
            entries.push(entry(a.min(b), a.max(b), id));
        }
        for split in [0usize, 1, 2, 75, 148, 150] {
            let (resident, batch) = entries.split_at(split);
            let mut merged = BinIntervals::from_entries(resident.to_vec());
            merged.insert_batch(batch.to_vec());
            let mut serial = BinIntervals::from_entries(resident.to_vec());
            for &e in batch {
                serial.insert(e);
            }
            assert_eq!(merged.len(), serial.len(), "split={split}");
            for _ in 0..50 {
                let a = next();
                let b = next();
                let (qmin, qmax) = (a.min(b), a.max(b));
                let mut got = Vec::new();
                merged.overlapping(qmin, qmax, &mut got);
                got.sort_unstable();
                assert_eq!(got, brute_force(&entries, qmin, qmax), "split={split}");
            }
        }
    }

    #[test]
    fn scanned_is_smaller_prefix() {
        // Many low intervals, one high: a high selective query must scan
        // only the short prefix.
        let mut entries: Vec<IntervalEntry> = (0..100).map(|i| entry(0.0, 0.1, i)).collect();
        entries.push(entry(0.95, 1.0, 100));
        let bin = BinIntervals::from_entries(entries);
        let mut got = Vec::new();
        let scanned = bin.overlapping(0.9, 1.0, &mut got);
        assert_eq!(got, vec![ImageId::new(100)]);
        assert!(
            scanned <= 2,
            "scanned {scanned} entries, wanted the short prefix"
        );
    }
}

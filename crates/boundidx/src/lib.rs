#![warn(missing_docs)]

//! # mmdb-boundidx
//!
//! A bound-interval index over the catalog: the paper's §3.1 observation
//! that "histograms can be organized in multidimensional indexes" applied to
//! the BOUNDS machinery. A bound interval depends only on
//! `(edit sequence, bin, rule profile)` — it is query-invariant — so this
//! crate memoizes the full per-bin bounds vector of every image once and
//! organizes the resulting fraction intervals in per-bin sorted-endpoint
//! lists ([`interval::BinIntervals`]). A range query then becomes two
//! galloping prefix searches plus a scan of the smaller prefix instead of a
//! rule walk per edited image, while returning *exactly* the RBM/BWM
//! candidate set (no false negatives, same false-positive bounds — verified
//! by property test in `mmdbms`).
//!
//! Freshness is epoch-based: the storage engine stamps every catalog
//! mutation, [`BoundIndex::sync`] reconciles the index to a stamped catalog
//! snapshot, and the facade refuses to serve a lookup whose
//! [`BoundIndex::synced_epoch`] is behind the engine. Deletion invalidates
//! transitively through the reference graph (base links and Merge targets),
//! so an entry whose inputs vanished is never consulted.

mod guard;
mod index;
mod interval;

pub use guard::{EpochSlot, EpochStamped};
pub use index::{profile_slot, BoundIndex, IndexedLookup, SyncStats, PROFILE_SLOTS};
pub use interval::{BinIntervals, IntervalEntry};

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the index schema from process start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        "mmdb_boundidx_hits_total",
        "mmdb_boundidx_misses_total",
        "mmdb_boundidx_invalidations_total",
        "mmdb_boundidx_lookups_total",
        "mmdb_boundidx_builds_total",
    ] {
        let _ = g.counter(name);
    }
    let _ = g.gauge("mmdb_boundidx_entries");
    for name in ["mmdb_boundidx_build_seconds", "mmdb_boundidx_sync_seconds"] {
        let _ = g.histogram(name);
    }
}

#![warn(missing_docs)]

//! # mmdb-boundidx
//!
//! A bound-interval index over the catalog: the paper's §3.1 observation
//! that "histograms can be organized in multidimensional indexes" applied to
//! the BOUNDS machinery. A bound interval depends only on
//! `(edit sequence, bin, rule profile)` — it is query-invariant — so this
//! crate memoizes the full per-bin bounds vector of every image once and
//! organizes the resulting fraction intervals in per-bin sorted-endpoint
//! lists ([`interval::BinIntervals`]). A range query then becomes two
//! galloping prefix searches plus a scan of the smaller prefix instead of a
//! rule walk per edited image, while returning *exactly* the RBM/BWM
//! candidate set (no false negatives, same false-positive bounds — verified
//! by property test in `mmdbms`).
//!
//! Freshness is epoch-based: the storage engine stamps every catalog
//! mutation, [`BoundIndex::sync`] reconciles the index to a stamped catalog
//! snapshot, and the facade refuses to serve a lookup whose
//! [`BoundIndex::synced_epoch`] is behind the engine. Deletion invalidates
//! transitively through the reference graph (base links and Merge targets),
//! so an entry whose inputs vanished is never consulted.

mod guard;
mod index;
mod interval;
pub mod persist;

pub use guard::{EpochSlot, EpochStamped};
pub use index::{profile_slot, BoundIndex, IndexedLookup, SyncStats, PROFILE_SLOTS};
pub use interval::{BinIntervals, IntervalEntry};

use mmdb_editops::ImageId;
use mmdb_rules::RuleProfile;

/// Per-profile staleness gauge series (each exported with a
/// `{profile="..."}` label for both rule profiles).
const STALENESS_GAUGES: [&str; 5] = [
    "mmdb_boundidx_epoch_lag",
    "mmdb_boundidx_entries_resident",
    "mmdb_boundidx_entries_invalidated",
    "mmdb_boundidx_resync_backlog",
    "mmdb_boundidx_seconds_since_sync",
];

/// A point-in-time staleness/residency reading for one profile's index
/// slot, computed against the catalog state the caller just observed.
///
/// Staleness is **epoch lag** — the engine's mutation epoch minus the
/// index's synced epoch — not wall-clock age: an idle catalog leaves a
/// day-old index perfectly fresh, while one insert makes a second-old index
/// stale. Wall clock (`seconds_since_sync`) is reported separately because
/// it bounds *recency of reconciliation*, which a resync scheduler (ROADMAP
/// item 3) needs alongside lag to price a sync.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StalenessReport {
    /// `storage.current_epoch() - index.synced_epoch()`; for an unbuilt
    /// slot, the full current epoch (everything is pending).
    pub epoch_lag: u64,
    /// Entries resident in the index right now.
    pub entries_resident: u64,
    /// Entries eagerly invalidated since the last reconciliation.
    pub entries_invalidated: u64,
    /// Work the next sync must do: catalog images with no resident entry
    /// plus resident entries no longer in the catalog.
    pub resync_backlog: u64,
    /// Whole seconds since the slot last reconciled (0 for an unbuilt slot).
    pub seconds_since_sync: u64,
}

impl StalenessReport {
    /// Computes the report for one slot against the catalog ids and epoch
    /// the caller captured. `idx` is `None` for a never-built slot.
    pub fn compute(
        idx: Option<&BoundIndex>,
        current_epoch: u64,
        binary: &[ImageId],
        edited: &[ImageId],
    ) -> Self {
        let catalog_len = (binary.len() + edited.len()) as u64;
        match idx {
            None => StalenessReport {
                epoch_lag: current_epoch,
                resync_backlog: catalog_len,
                ..StalenessReport::default()
            },
            Some(idx) => {
                let epoch_lag = current_epoch.saturating_sub(idx.synced_epoch());
                let resident = idx.len() as u64;
                let backlog = if epoch_lag == 0 {
                    0
                } else {
                    let covered = binary
                        .iter()
                        .chain(edited)
                        .filter(|&&id| idx.contains(id))
                        .count() as u64;
                    // Missing entries to add, plus resident strays to drop.
                    (catalog_len - covered) + (resident - covered)
                };
                StalenessReport {
                    epoch_lag,
                    entries_resident: resident,
                    entries_invalidated: idx.invalidated_since_sync(),
                    resync_backlog: backlog,
                    seconds_since_sync: idx.since_last_sync().as_secs(),
                }
            }
        }
    }

    /// Publishes the report as the five `{profile=...}` gauge series.
    pub fn publish(&self, profile: RuleProfile) {
        let g = mmdb_telemetry::global();
        let series = |metric: &str| g.gauge(&labeled(metric, profile.label()));
        series("mmdb_boundidx_epoch_lag").set(self.epoch_lag);
        series("mmdb_boundidx_entries_resident").set(self.entries_resident);
        series("mmdb_boundidx_entries_invalidated").set(self.entries_invalidated);
        series("mmdb_boundidx_resync_backlog").set(self.resync_backlog);
        series("mmdb_boundidx_seconds_since_sync").set(self.seconds_since_sync);
    }
}

fn labeled(metric: &str, profile: &str) -> String {
    format!("{metric}{{profile=\"{profile}\"}}")
}

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the index schema from process start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        "mmdb_boundidx_hits_total",
        "mmdb_boundidx_misses_total",
        "mmdb_boundidx_invalidations_total",
        "mmdb_boundidx_lookups_total",
        "mmdb_boundidx_builds_total",
        "mmdb_boundidx_persist_total",
        "mmdb_boundidx_persist_bytes_total",
        "mmdb_boundidx_warm_loads_total",
    ] {
        let _ = g.counter(name);
    }
    let _ = g.gauge("mmdb_boundidx_entries");
    for metric in STALENESS_GAUGES {
        for profile in [RuleProfile::Conservative, RuleProfile::PaperTable1] {
            let _ = g.gauge(&labeled(metric, profile.label()));
        }
    }
    for name in [
        "mmdb_boundidx_build_seconds",
        "mmdb_boundidx_sync_seconds",
        "mmdb_boundidx_persist_seconds",
        "mmdb_boundidx_load_seconds",
    ] {
        let _ = g.histogram(name);
    }
}

//! The proposed data structure (§4.1) and its insertion algorithm (Fig. 1).

use mmdb_editops::{EditSequence, ImageId};
use mmdb_telemetry::counter;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where an edited image landed during Fig. 1 classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// All operations have bound-widening rules — clustered in the Main
    /// Component under the referenced base image.
    Main,
    /// At least one operation's rule is not bound-widening.
    Unclassified,
}

/// Access to stored edit sequences by id. Implemented by the storage engine;
/// tests can use a closure-backed map.
pub trait SequenceStore {
    /// The stored sequence of an edited image.
    fn sequence(&self, id: ImageId) -> Option<Arc<EditSequence>>;
}

impl SequenceStore for mmdb_storage::StorageEngine {
    fn sequence(&self, id: ImageId) -> Option<Arc<EditSequence>> {
        self.edit_sequence(id)
    }
}

impl SequenceStore for std::collections::HashMap<ImageId, Arc<EditSequence>> {
    fn sequence(&self, id: ImageId) -> Option<Arc<EditSequence>> {
        self.get(&id).cloned()
    }
}

/// The Main + Unclassified components of §4.1.
///
/// "Each element of the Main Component is composed of a tuple `<B_id,
/// E_list>` where `B_id` is the identifier of \[the\] referenced base image and
/// `E_list` is the list of identifiers of edited images that were created
/// from modifying `B_id`." A `BTreeMap` keeps the clusters sorted by base id
/// ("the list of identifiers should be kept sorted to make it easier to
/// search for a specific binary image").
#[derive(Clone, Debug, Default)]
pub struct BwmStructure {
    main: BTreeMap<ImageId, Vec<ImageId>>,
    unclassified: Vec<ImageId>,
}

impl BwmStructure {
    /// An empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fig. 1 step for a binary image: "each time an image stored in a
    /// traditional binary format is inserted, the identifier for its
    /// corresponding histogram should be added to the Main Component" — an
    /// empty cluster keyed by the image.
    pub fn insert_binary(&mut self, id: ImageId) {
        counter!("mmdb_bwm_cluster_inserts_total").inc();
        self.main.entry(id).or_default();
    }

    /// Fig. 1 for an edited image: ask the static analyzer for the
    /// sequence's widening verdict; all bound-widening → append to the
    /// base's cluster in Main, otherwise append to Unclassified. Returns
    /// the classification.
    pub fn insert_edited(&mut self, id: ImageId, sequence: &EditSequence) -> Classification {
        if mmdb_analysis::widening_verdict(sequence).all_widening {
            counter!(r#"mmdb_bwm_edited_inserts_total{component="classified"}"#).inc();
            self.main.entry(sequence.base).or_default().push(id);
            Classification::Main
        } else {
            counter!(r#"mmdb_bwm_edited_inserts_total{component="unclassified"}"#).inc();
            self.unclassified.push(id);
            Classification::Unclassified
        }
    }

    /// Rebuilds the structure from scratch over a set of images — used when
    /// attaching BWM to an existing database.
    pub fn build<S: SequenceStore>(
        binary_ids: impl IntoIterator<Item = ImageId>,
        edited_ids: impl IntoIterator<Item = ImageId>,
        store: &S,
    ) -> Self {
        let mut s = BwmStructure::new();
        for id in binary_ids {
            s.insert_binary(id);
        }
        for id in edited_ids {
            if let Some(seq) = store.sequence(id) {
                s.insert_edited(id, &seq);
            }
        }
        s
    }

    /// Removes an image (binary or edited) from the structure. Removing a
    /// binary image drops its cluster; its clustered edited images are
    /// returned so the caller can decide what to do with them (normally they
    /// were deleted first — the storage engine enforces that).
    pub fn remove(&mut self, id: ImageId) -> Vec<ImageId> {
        counter!("mmdb_bwm_removals_total").inc();
        if let Some(orphans) = self.main.remove(&id) {
            counter!("mmdb_bwm_orphaned_total").add(orphans.len() as u64);
            if !orphans.is_empty() && mmdb_telemetry::instrumentation_enabled() {
                mmdb_telemetry::recorder().record(
                    mmdb_telemetry::EventKind::BwmReclassified,
                    format!("base {id} removed, cluster dissolved"),
                    &[("orphaned", orphans.len() as u64)],
                );
            }
            return orphans;
        }
        for list in self.main.values_mut() {
            if let Some(pos) = list.iter().position(|&e| e == id) {
                list.remove(pos);
                return Vec::new();
            }
        }
        if let Some(pos) = self.unclassified.iter().position(|&e| e == id) {
            self.unclassified.remove(pos);
        }
        Vec::new()
    }

    /// The classification of an edited image, or `None` if untracked.
    pub fn classification(&self, id: ImageId) -> Option<Classification> {
        if self.unclassified.contains(&id) {
            return Some(Classification::Unclassified);
        }
        if self.main.values().any(|list| list.contains(&id)) {
            return Some(Classification::Main);
        }
        None
    }

    /// Iterates `(base, edited-cluster)` in ascending base-id order.
    pub fn clusters(&self) -> impl Iterator<Item = (ImageId, &[ImageId])> + '_ {
        self.main.iter().map(|(&b, list)| (b, list.as_slice()))
    }

    /// The cluster for one base image.
    pub fn cluster_of(&self, base: ImageId) -> Option<&[ImageId]> {
        self.main.get(&base).map(Vec::as_slice)
    }

    /// The Unclassified Component, in insertion order.
    pub fn unclassified(&self) -> &[ImageId] {
        &self.unclassified
    }

    /// Number of Main-Component clusters (= tracked binary images).
    pub fn cluster_count(&self) -> usize {
        self.main.len()
    }

    /// Number of edited images in the Main Component.
    pub fn classified_count(&self) -> usize {
        self.main.values().map(Vec::len).sum()
    }

    /// Number of edited images in the Unclassified Component.
    pub fn unclassified_count(&self) -> usize {
        self.unclassified.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_imaging::{Rect, Rgb};
    use std::collections::HashMap;

    fn widening(base: u64) -> EditSequence {
        EditSequence::builder(ImageId::new(base))
            .define(Rect::new(0, 0, 4, 4))
            .modify(Rgb::RED, Rgb::BLUE)
            .blur()
            .build()
    }

    fn non_widening(base: u64, target: u64) -> EditSequence {
        EditSequence::builder(ImageId::new(base))
            .define(Rect::new(0, 0, 2, 2))
            .merge_into(ImageId::new(target), 0, 0)
            .build()
    }

    #[test]
    fn insertion_classifies_per_fig1() {
        let mut s = BwmStructure::new();
        s.insert_binary(ImageId::new(1));
        s.insert_binary(ImageId::new(2));
        assert_eq!(s.cluster_count(), 2);

        let c = s.insert_edited(ImageId::new(10), &widening(1));
        assert_eq!(c, Classification::Main);
        let c = s.insert_edited(ImageId::new(11), &non_widening(1, 2));
        assert_eq!(c, Classification::Unclassified);

        assert_eq!(s.cluster_of(ImageId::new(1)).unwrap(), &[ImageId::new(10)]);
        assert_eq!(s.unclassified(), &[ImageId::new(11)]);
        assert_eq!(s.classified_count(), 1);
        assert_eq!(s.unclassified_count(), 1);
        assert_eq!(
            s.classification(ImageId::new(10)),
            Some(Classification::Main)
        );
        assert_eq!(
            s.classification(ImageId::new(11)),
            Some(Classification::Unclassified)
        );
        assert_eq!(s.classification(ImageId::new(99)), None);
    }

    #[test]
    fn clusters_iterate_sorted_by_base() {
        let mut s = BwmStructure::new();
        for b in [5u64, 1, 3] {
            s.insert_binary(ImageId::new(b));
        }
        let order: Vec<u64> = s.clusters().map(|(b, _)| b.raw()).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn build_from_store() {
        let mut seqs: HashMap<ImageId, Arc<EditSequence>> = HashMap::new();
        seqs.insert(ImageId::new(10), Arc::new(widening(1)));
        seqs.insert(ImageId::new(11), Arc::new(widening(2)));
        seqs.insert(ImageId::new(12), Arc::new(non_widening(1, 2)));
        let s = BwmStructure::build(
            [ImageId::new(1), ImageId::new(2)],
            [ImageId::new(10), ImageId::new(11), ImageId::new(12)],
            &seqs,
        );
        assert_eq!(s.cluster_count(), 2);
        assert_eq!(s.classified_count(), 2);
        assert_eq!(s.unclassified_count(), 1);
    }

    #[test]
    fn remove_edited_and_binary() {
        let mut s = BwmStructure::new();
        s.insert_binary(ImageId::new(1));
        s.insert_edited(ImageId::new(10), &widening(1));
        s.insert_edited(ImageId::new(11), &non_widening(1, 2));
        assert!(s.remove(ImageId::new(11)).is_empty());
        assert_eq!(s.unclassified_count(), 0);
        // Removing the base returns its clustered children.
        let orphans = s.remove(ImageId::new(1));
        assert_eq!(orphans, vec![ImageId::new(10)]);
        assert_eq!(s.cluster_count(), 0);
        // Removing something unknown is a no-op.
        assert!(s.remove(ImageId::new(77)).is_empty());
    }

    #[test]
    fn empty_sequence_is_main_eligible() {
        let mut s = BwmStructure::new();
        let seq = EditSequence::new(ImageId::new(1), vec![]);
        assert_eq!(s.insert_edited(ImageId::new(2), &seq), Classification::Main);
    }
}

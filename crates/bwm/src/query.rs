//! The BWM query processing algorithm (§4.1, Figure 2).

use crate::structure::{BwmStructure, SequenceStore};
use mmdb_editops::ImageId;
use mmdb_rules::{BoundRange, ColorRangeQuery, InfoResolver, Result, RuleEngine, RuleError};
use mmdb_telemetry::{counter, QueryTrace};
use std::time::Instant;

/// A read-only source of memoized BOUNDS results. When a bounds cache is
/// supplied, `bounds_test` consults it before walking the operation list —
/// the bound-interval index (`mmdb-boundidx`) implements this, turning the
/// per-edited-image cost of a non-shortcut cluster from `O(ops)` into a map
/// probe. The cache must serve bounds computed with the *same* rule profile
/// and a catalog state at least as fresh as the structure being queried;
/// the facade enforces both.
pub trait BoundsCache {
    /// The memoized range for `(id, bin)`, or `None` to fall back to the
    /// rule engine.
    fn cached_bounds(&self, id: ImageId, bin: usize) -> Option<BoundRange>;
}

/// Work counters for one query execution — these are what Figures 3/4 of
/// the paper measure indirectly (execution time tracks the number of rule
/// applications avoided).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BwmQueryStats {
    /// Main-Component clusters visited.
    pub clusters_visited: usize,
    /// Clusters whose base histogram satisfied the query (shortcut taken).
    pub base_hits: usize,
    /// Edited images emitted *without* applying any rule.
    pub shortcut_emissions: usize,
    /// Full BOUNDS computations executed.
    pub bounds_computed: usize,
    /// BOUNDS computations whose resulting range was inexact (the rules
    /// widened it beyond a point estimate). Zero whenever no edited image
    /// required a rule walk — e.g. a never-edited database.
    pub bounds_widened: usize,
    /// Individual editing operations whose rules were applied.
    pub ops_processed: usize,
    /// Unclassified-Component entries scanned.
    pub unclassified_scanned: usize,
    /// Bounds served from a [`BoundsCache`] instead of a rule walk.
    pub bound_cache_hits: usize,
}

/// The result of a BWM (or RBM) range-query execution.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// Candidate images, in emission order: binary images satisfy the query
    /// exactly; edited images *may* satisfy it (bounds overlap — the RBM
    /// guarantee is no false negatives).
    pub results: Vec<ImageId>,
    /// Work counters.
    pub stats: BwmQueryStats,
}

impl QueryOutcome {
    /// Results as a sorted vector (emission order differs between RBM and
    /// BWM; equality of result *sets* is the correctness criterion).
    pub fn sorted_results(&self) -> Vec<ImageId> {
        let mut v = self.results.clone();
        v.sort_unstable();
        v
    }
}

/// Executes the Figure 2 algorithm over a BWM structure.
///
/// For every Main-Component cluster: if the base's (exact) histogram
/// fraction satisfies the query, the base and its whole cluster are emitted
/// without touching any operation list; otherwise each clustered edited
/// image runs the full BOUNDS computation. Unclassified entries always run
/// BOUNDS.
pub fn execute<S: SequenceStore>(
    structure: &BwmStructure,
    query: &ColorRangeQuery,
    engine: &RuleEngine<'_>,
    resolver: &dyn InfoResolver,
    store: &S,
) -> Result<QueryOutcome> {
    execute_with_cache(structure, query, engine, resolver, store, None)
}

/// [`execute`] with an optional memoized-bounds fast path: clusters whose
/// base misses (and Unclassified entries) probe `cache` before running the
/// BOUNDS rules. Result sets are identical with or without a cache.
pub fn execute_with_cache<S: SequenceStore>(
    structure: &BwmStructure,
    query: &ColorRangeQuery,
    engine: &RuleEngine<'_>,
    resolver: &dyn InfoResolver,
    store: &S,
    cache: Option<&dyn BoundsCache>,
) -> Result<QueryOutcome> {
    let mut out = QueryOutcome::default();
    scan_main(structure, query, engine, resolver, store, cache, &mut out)?;
    scan_unclassified(structure, query, engine, resolver, store, cache, &mut out)?;
    flush_query_metrics(&out.stats);
    Ok(out)
}

/// [`execute`] with a per-stage [`QueryTrace`]: the Main-Component and
/// Unclassified scans each become a timed stage carrying their work
/// counters. Used by `mmdbctl explain` and the facade's traced query path.
pub fn execute_traced<S: SequenceStore>(
    structure: &BwmStructure,
    query: &ColorRangeQuery,
    engine: &RuleEngine<'_>,
    resolver: &dyn InfoResolver,
    store: &S,
) -> Result<(QueryOutcome, QueryTrace)> {
    let mut out = QueryOutcome::default();
    let started = Instant::now();
    scan_main(structure, query, engine, resolver, store, None, &mut out)?;
    let main_elapsed = started.elapsed();
    let main_stats = out.stats;

    let uncl_started = Instant::now();
    scan_unclassified(structure, query, engine, resolver, store, None, &mut out)?;
    let uncl_elapsed = uncl_started.elapsed();
    flush_query_metrics(&out.stats);

    let mut trace = QueryTrace::new("bwm_range");
    trace.counter("results", out.results.len() as u64);
    trace.counter("bounds_computed", out.stats.bounds_computed as u64);
    trace.counter("bounds_widened", out.stats.bounds_widened as u64);
    trace
        .stage("main_component", main_elapsed)
        .counter("clusters_visited", main_stats.clusters_visited as u64)
        .counter("base_hits", main_stats.base_hits as u64)
        .counter("shortcut_emissions", main_stats.shortcut_emissions as u64)
        .counter("bounds_computed", main_stats.bounds_computed as u64)
        .counter("ops_processed", main_stats.ops_processed as u64);
    trace
        .stage("unclassified", uncl_elapsed)
        .counter("scanned", out.stats.unclassified_scanned as u64)
        .counter(
            "bounds_computed",
            (out.stats.bounds_computed - main_stats.bounds_computed) as u64,
        )
        .counter(
            "ops_processed",
            (out.stats.ops_processed - main_stats.ops_processed) as u64,
        );
    trace.finish(started.elapsed());
    Ok((out, trace))
}

/// Step 4: each element `<B_id, E_list>` of the Main Component.
fn scan_main<S: SequenceStore>(
    structure: &BwmStructure,
    query: &ColorRangeQuery,
    engine: &RuleEngine<'_>,
    resolver: &dyn InfoResolver,
    store: &S,
    cache: Option<&dyn BoundsCache>,
    out: &mut QueryOutcome,
) -> Result<()> {
    for (base, cluster) in structure.clusters() {
        out.stats.clusters_visited += 1;
        let info = resolver.require(base)?;
        let fraction = info.histogram.fraction(query.bin);
        if query.matches_fraction(fraction) {
            // 4.2: base satisfies → base and every clustered edited image.
            out.stats.base_hits += 1;
            out.results.push(base);
            out.results.extend_from_slice(cluster);
            out.stats.shortcut_emissions += cluster.len();
        } else {
            // 4.3: fall back to the BOUNDS algorithm per edited image.
            for &edited in cluster {
                bounds_test(edited, query, engine, resolver, store, cache, out)?;
            }
        }
    }
    Ok(())
}

/// Step 5: the Unclassified Component.
fn scan_unclassified<S: SequenceStore>(
    structure: &BwmStructure,
    query: &ColorRangeQuery,
    engine: &RuleEngine<'_>,
    resolver: &dyn InfoResolver,
    store: &S,
    cache: Option<&dyn BoundsCache>,
    out: &mut QueryOutcome,
) -> Result<()> {
    for &edited in structure.unclassified() {
        out.stats.unclassified_scanned += 1;
        bounds_test(edited, query, engine, resolver, store, cache, out)?;
    }
    Ok(())
}

/// Runs BOUNDS for one edited image (serving a memoized range from `cache`
/// when available) and emits it when the range overlaps.
fn bounds_test<S: SequenceStore>(
    edited: ImageId,
    query: &ColorRangeQuery,
    engine: &RuleEngine<'_>,
    resolver: &dyn InfoResolver,
    store: &S,
    cache: Option<&dyn BoundsCache>,
    out: &mut QueryOutcome,
) -> Result<()> {
    if let Some(bounds) = cache.and_then(|c| c.cached_bounds(edited, query.bin)) {
        out.stats.bound_cache_hits += 1;
        if bounds.overlaps_fraction(query.pct_min, query.pct_max) {
            out.results.push(edited);
        }
        return Ok(());
    }
    let seq = store
        .sequence(edited)
        .ok_or(RuleError::UnknownImage(edited))?;
    out.stats.bounds_computed += 1;
    out.stats.ops_processed += seq.len();
    let bounds = engine.bounds(&seq, query.bin, resolver)?;
    if !bounds.is_exact() {
        out.stats.bounds_widened += 1;
    }
    if bounds.overlaps_fraction(query.pct_min, query.pct_max) {
        out.results.push(edited);
    }
    Ok(())
}

/// Flushes the per-query work counters to the global registry in one batch —
/// the Figure 2 loops above touch only the `BwmQueryStats` struct.
fn flush_query_metrics(stats: &BwmQueryStats) {
    counter!("mmdb_bwm_queries_total").inc();
    counter!("mmdb_bwm_clusters_visited_total").add(stats.clusters_visited as u64);
    counter!("mmdb_bwm_base_hits_total").add(stats.base_hits as u64);
    counter!("mmdb_bwm_shortcut_emissions_total").add(stats.shortcut_emissions as u64);
    counter!("mmdb_bwm_ops_processed_total").add(stats.ops_processed as u64);
    counter!("mmdb_bwm_bounds_widened_total").add(stats.bounds_widened as u64);
    counter!("mmdb_bwm_bound_cache_hits_total").add(stats.bound_cache_hits as u64);
    let classified = stats
        .bounds_computed
        .saturating_sub(stats.unclassified_scanned);
    counter!(r#"mmdb_bwm_scans_total{component="classified"}"#).add(classified as u64);
    counter!(r#"mmdb_bwm_scans_total{component="unclassified"}"#)
        .add(stats.unclassified_scanned as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_editops::EditSequence;
    use mmdb_histogram::{ColorHistogram, Quantizer, RgbQuantizer};
    use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
    use mmdb_rules::{ImageInfo, MapInfoResolver, RuleProfile};
    use std::collections::HashMap;
    use std::sync::Arc;

    struct Fixture {
        structure: BwmStructure,
        resolver: MapInfoResolver,
        store: HashMap<ImageId, Arc<EditSequence>>,
        quant: RgbQuantizer,
    }

    /// Two bases: #1 is 50% red, #2 is 10% red. Edited images:
    /// #10 (widening, base 1), #11 (widening, base 2),
    /// #12 (unclassified: merges into base 1).
    fn fixture() -> Fixture {
        let quant = RgbQuantizer::default_64();
        let mut resolver = MapInfoResolver::new();

        let mut img1 = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img1, &Rect::new(0, 0, 10, 5), Rgb::RED);
        resolver.insert(
            ImageId::new(1),
            ImageInfo::new(ColorHistogram::extract(&img1, &quant), 10, 10),
        );

        let mut img2 = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        draw::fill_rect(&mut img2, &Rect::new(0, 0, 10, 1), Rgb::RED);
        resolver.insert(
            ImageId::new(2),
            ImageInfo::new(ColorHistogram::extract(&img2, &quant), 10, 10),
        );

        let mut store: HashMap<ImageId, Arc<EditSequence>> = HashMap::new();
        store.insert(
            ImageId::new(10),
            Arc::new(
                EditSequence::builder(ImageId::new(1))
                    .define(Rect::new(0, 0, 3, 3))
                    .blur()
                    .build(),
            ),
        );
        store.insert(
            ImageId::new(11),
            Arc::new(
                EditSequence::builder(ImageId::new(2))
                    .define(Rect::new(0, 0, 2, 2))
                    .modify(Rgb::WHITE, Rgb::RED)
                    .build(),
            ),
        );
        store.insert(
            ImageId::new(12),
            Arc::new(
                EditSequence::builder(ImageId::new(2))
                    .define(Rect::new(0, 0, 4, 4))
                    .merge_into(ImageId::new(1), 0, 0)
                    .build(),
            ),
        );

        let mut structure = BwmStructure::new();
        structure.insert_binary(ImageId::new(1));
        structure.insert_binary(ImageId::new(2));
        structure.insert_edited(ImageId::new(10), &store[&ImageId::new(10)]);
        structure.insert_edited(ImageId::new(11), &store[&ImageId::new(11)]);
        structure.insert_edited(ImageId::new(12), &store[&ImageId::new(12)]);
        Fixture {
            structure,
            resolver,
            store,
            quant,
        }
    }

    #[test]
    fn shortcut_taken_when_base_satisfies() {
        let f = fixture();
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let red = f.quant.bin_of(Rgb::RED);
        // Base 1 is 50% red: query [0.4, 0.6] hits it; base 2 (10%) misses.
        let q = ColorRangeQuery::new(red, 0.4, 0.6);
        let out = execute(&f.structure, &q, &engine, &f.resolver, &f.store).unwrap();
        assert!(out.results.contains(&ImageId::new(1)));
        assert!(
            out.results.contains(&ImageId::new(10)),
            "clustered edited emitted"
        );
        assert_eq!(out.stats.base_hits, 1);
        assert_eq!(out.stats.shortcut_emissions, 1);
        // Cluster 2's edited image #11 needed bounds; unclassified #12 too.
        assert_eq!(out.stats.bounds_computed, 2);
        assert_eq!(out.stats.unclassified_scanned, 1);
        // #11: base 10% red, modify adds up to 4% → range [?, 0.14]: cannot
        // reach 0.4 → pruned.
        assert!(!out.results.contains(&ImageId::new(11)));
        // #12 merges a 4x4 region into base 1 (50 red of 100): resulting
        // range includes 0.4..0.6 region? dr_max = 16, t covers: red target
        // 50−16=34 min, max min(50,100−16)+16 → range [0.34, 0.66]: overlaps.
        assert!(out.results.contains(&ImageId::new(12)));
    }

    #[test]
    fn no_base_hit_falls_back_everywhere() {
        let f = fixture();
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let red = f.quant.bin_of(Rgb::RED);
        // 90..100% red: no base satisfies.
        let q = ColorRangeQuery::new(red, 0.9, 1.0);
        let out = execute(&f.structure, &q, &engine, &f.resolver, &f.store).unwrap();
        assert_eq!(out.stats.base_hits, 0);
        assert_eq!(out.stats.shortcut_emissions, 0);
        // All three edited images ran BOUNDS.
        assert_eq!(out.stats.bounds_computed, 3);
        assert!(out.results.is_empty(), "{:?}", out.results);
    }

    #[test]
    fn missing_sequence_is_error() {
        let mut f = fixture();
        f.store.remove(&ImageId::new(11));
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let q = ColorRangeQuery::new(0, 0.9, 1.0);
        assert!(matches!(
            execute(&f.structure, &q, &engine, &f.resolver, &f.store),
            Err(RuleError::UnknownImage(id)) if id == ImageId::new(11)
        ));
    }

    #[test]
    fn stats_track_ops() {
        let f = fixture();
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let q = ColorRangeQuery::new(f.quant.bin_of(Rgb::RED), 0.9, 1.0);
        let out = execute(&f.structure, &q, &engine, &f.resolver, &f.store).unwrap();
        // #10 has 2 ops, #11 has 2 ops, #12 has 2 ops.
        assert_eq!(out.stats.ops_processed, 6);
        assert_eq!(out.stats.clusters_visited, 2);
    }

    /// A cache holding every edited image's true bounds must produce the
    /// identical result set with zero rule walks outside shortcut clusters.
    #[test]
    fn bounds_cache_preserves_results_and_skips_rule_walks() {
        struct MapCache(HashMap<(ImageId, usize), mmdb_rules::BoundRange>);
        impl BoundsCache for MapCache {
            fn cached_bounds(&self, id: ImageId, bin: usize) -> Option<mmdb_rules::BoundRange> {
                self.0.get(&(id, bin)).copied()
            }
        }

        let f = fixture();
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let red = f.quant.bin_of(Rgb::RED);
        let mut cache = MapCache(HashMap::new());
        for (&id, seq) in &f.store {
            for bin in [red, 0] {
                cache
                    .0
                    .insert((id, bin), engine.bounds(seq, bin, &f.resolver).unwrap());
            }
        }

        for q in [
            ColorRangeQuery::new(red, 0.4, 0.6),
            ColorRangeQuery::new(red, 0.9, 1.0),
            ColorRangeQuery::new(0, 0.0, 1.0),
        ] {
            let plain = execute(&f.structure, &q, &engine, &f.resolver, &f.store).unwrap();
            let cached = execute_with_cache(
                &f.structure,
                &q,
                &engine,
                &f.resolver,
                &f.store,
                Some(&cache),
            )
            .unwrap();
            assert_eq!(plain.sorted_results(), cached.sorted_results());
            assert_eq!(
                cached.stats.bounds_computed, 0,
                "cache must cover every walk"
            );
            assert_eq!(
                cached.stats.bound_cache_hits, plain.stats.bounds_computed,
                "every avoided rule walk must be a counted hit"
            );
        }
    }

    /// Satellite check: `bounds_widened` reaches the Prometheus registry —
    /// the counter delta across an execution must cover the per-query stat
    /// (`>=` because tests in this binary run concurrently).
    #[test]
    fn widened_counter_is_flushed() {
        let f = fixture();
        let engine = RuleEngine::new(&f.quant, RuleProfile::Conservative);
        let q = ColorRangeQuery::new(f.quant.bin_of(Rgb::RED), 0.9, 1.0);
        let before = mmdb_telemetry::global()
            .snapshot()
            .get("mmdb_bwm_bounds_widened_total");
        let out = execute(&f.structure, &q, &engine, &f.resolver, &f.store).unwrap();
        assert!(
            out.stats.bounds_widened > 0,
            "fixture must widen some bound"
        );
        let after = mmdb_telemetry::global()
            .snapshot()
            .get("mmdb_bwm_bounds_widened_total");
        assert!(
            after - before >= out.stats.bounds_widened as u64,
            "flush_query_metrics must export bounds_widened ({before} -> {after})"
        );
    }

    #[test]
    fn outcome_sorting() {
        let out = QueryOutcome {
            results: vec![ImageId::new(5), ImageId::new(1), ImageId::new(3)],
            stats: BwmQueryStats::default(),
        };
        assert_eq!(
            out.sorted_results(),
            vec![ImageId::new(1), ImageId::new(3), ImageId::new(5)]
        );
    }
}

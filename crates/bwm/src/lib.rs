#![warn(missing_docs)]

//! # mmdb-bwm
//!
//! The **Bound-Widening Method (BWM)** — the contribution of the paper (§4).
//!
//! RBM (crate `mmdb-rules`) must "access every edited image in a database as
//! well as every editing operation within each image description" for every
//! query. BWM avoids much of that work with a two-component data structure:
//!
//! * the **Main Component** clusters edited images *whose operations all
//!   have bound-widening rules* under their referenced base image
//!   (`<B_id, E_list>` tuples, kept sorted by base id);
//! * the **Unclassified Component** lists every edited image containing at
//!   least one non-bound-widening operation (`Merge` with a target).
//!
//! The query shortcut (§4, Figure 2): since bound-widening rules can only
//! *widen* the fraction range, and an edited image's initial range is its
//! base's exact histogram value, **if the base satisfies the query then
//! every clustered edited image's final range must still overlap the query
//! range** — so the whole cluster is emitted without touching a single
//! editing operation. Only clusters whose base misses, and the Unclassified
//! Component, fall back to the full BOUNDS computation.
//!
//! Both methods return identical result sets; BWM is purely a work-avoidance
//! structure (verified by integration tests).

pub mod query;
pub mod structure;

pub use query::{
    execute, execute_traced, execute_with_cache, BoundsCache, BwmQueryStats, QueryOutcome,
};
pub use structure::{BwmStructure, Classification, SequenceStore};

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the full BWM schema from process start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        "mmdb_bwm_cluster_inserts_total",
        r#"mmdb_bwm_edited_inserts_total{component="classified"}"#,
        r#"mmdb_bwm_edited_inserts_total{component="unclassified"}"#,
        "mmdb_bwm_removals_total",
        "mmdb_bwm_orphaned_total",
        "mmdb_bwm_queries_total",
        "mmdb_bwm_clusters_visited_total",
        "mmdb_bwm_base_hits_total",
        "mmdb_bwm_shortcut_emissions_total",
        "mmdb_bwm_ops_processed_total",
        "mmdb_bwm_bounds_widened_total",
        "mmdb_bwm_bound_cache_hits_total",
        r#"mmdb_bwm_scans_total{component="classified"}"#,
        r#"mmdb_bwm_scans_total{component="unclassified"}"#,
    ] {
        let _ = g.counter(name);
    }
}

//! Property tests for the edit-operation model: codec round-trips for
//! arbitrary sequences, and structural invariants of the instantiation
//! engine.

use mmdb_editops::{
    codec, EditOp, EditSequence, ImageId, InstantiationEngine, MapResolver, Matrix3,
};
use mmdb_imaging::{RasterImage, Rect, Rgb};
use proptest::prelude::*;

fn arb_rgb() -> impl Strategy<Value = Rgb> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(r, g, b)| Rgb::new(r, g, b))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-50i64..50, -50i64..50, -50i64..50, -50i64..50)
        .prop_map(|(x0, y0, x1, y1)| Rect::new(x0, y0, x1, y1))
}

fn arb_matrix() -> impl Strategy<Value = Matrix3> {
    prop_oneof![
        (-20.0f64..20.0, -20.0f64..20.0).prop_map(|(dx, dy)| Matrix3::translation(dx, dy)),
        (0.1f64..4.0, 0.1f64..4.0).prop_map(|(sx, sy)| Matrix3::scale(sx, sy)),
        (0.0f64..6.3, -10.0f64..10.0, -10.0f64..10.0)
            .prop_map(|(a, cx, cy)| Matrix3::rotation_about(a, cx, cy)),
        proptest::array::uniform9(-3.0f64..3.0).prop_map(Matrix3::from_flat),
    ]
}

fn arb_op() -> impl Strategy<Value = EditOp> {
    prop_oneof![
        arb_rect().prop_map(|region| EditOp::Define { region }),
        proptest::array::uniform9(-2.0f32..2.0).prop_map(|weights| EditOp::Combine { weights }),
        (arb_rgb(), arb_rgb()).prop_map(|(from, to)| EditOp::Modify { from, to }),
        arb_matrix().prop_map(|matrix| EditOp::Mutate { matrix }),
        (any::<Option<u64>>(), -100i64..100, -100i64..100).prop_map(|(t, xp, yp)| {
            EditOp::Merge {
                target: t.map(ImageId::new),
                xp,
                yp,
            }
        }),
    ]
}

fn arb_sequence() -> impl Strategy<Value = EditSequence> {
    (any::<u64>(), proptest::collection::vec(arb_op(), 0..12))
        .prop_map(|(base, ops)| EditSequence::new(ImageId::new(base), ops))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary codec round-trips every representable sequence.
    #[test]
    fn binary_codec_roundtrip(seq in arb_sequence()) {
        let bytes = codec::encode(&seq);
        let back = codec::decode(&bytes).expect("well-formed encoding decodes");
        prop_assert_eq!(seq, back);
    }

    /// Decoding never panics on arbitrary garbage (errors are fine).
    #[test]
    fn binary_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes);
    }

    /// Truncations of a valid encoding are always rejected, never mis-decoded.
    #[test]
    fn binary_truncations_rejected(seq in arb_sequence(), cut_frac in 0.0f64..1.0) {
        let bytes = codec::encode(&seq);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(codec::decode(&bytes[..cut]).is_err());
        }
    }

    /// Text round-trip for finite-parameter sequences (the text format
    /// prints floats with `{}`, which round-trips f64/f32 exactly in Rust).
    #[test]
    fn text_codec_roundtrip(seq in arb_sequence()) {
        let text = codec::to_text(&seq);
        let back = codec::from_text(&text).expect("rendered script parses");
        prop_assert_eq!(seq, back);
    }

    /// `kind_histogram` counts every operation exactly once.
    #[test]
    fn kind_histogram_total(seq in arb_sequence()) {
        let total: usize = seq.kind_histogram().iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, seq.len());
    }

    /// Classification agrees with the per-op definition.
    #[test]
    fn classification_is_conjunction(seq in arb_sequence()) {
        prop_assert_eq!(
            seq.all_bound_widening(),
            seq.ops.iter().all(mmdb_editops::EditOp::is_bound_widening)
        );
    }
}

// Instantiation is deterministic: the same sequence over the same base
// yields the same raster.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn instantiation_is_deterministic(
        ops in proptest::collection::vec(arb_op(), 0..6),
        w in 4u32..16,
        h in 4u32..16,
    ) {
        let base = RasterImage::from_fn(w, h, |x, y| {
            Rgb::new((x * 31) as u8, (y * 17) as u8, ((x + y) * 7) as u8)
        })
        .unwrap();
        let target = RasterImage::filled(6, 6, Rgb::GREEN).unwrap();
        let mut resolver = MapResolver::new();
        resolver.insert(ImageId::new(1), base);
        // Remap all merge targets to the one registered image so resolution
        // can succeed.
        let ops: Vec<EditOp> = ops
            .into_iter()
            .map(|op| match op {
                EditOp::Merge { target: Some(_), xp, yp } => EditOp::Merge {
                    target: Some(ImageId::new(2)),
                    xp: xp.clamp(-8, 8),
                    yp: yp.clamp(-8, 8),
                },
                other => other,
            })
            .collect();
        resolver.insert(ImageId::new(2), target);
        let seq = EditSequence::new(ImageId::new(1), ops);
        let engine = InstantiationEngine::new(&resolver);
        match (engine.instantiate(&seq), engine.instantiate(&seq)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {} // deterministic failure is fine
            (a, b) => prop_assert!(false, "non-deterministic outcome: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

//! Codecs for persisting edit sequences.
//!
//! Two formats are provided:
//!
//! * a **compact binary format** (`encode`/`decode`) — what the storage
//!   engine writes into its blob pages. A typical 5-op sequence encodes to
//!   well under 200 bytes, which is the space saving that motivates storing
//!   edited images as operations in the first place (§2);
//! * a **line-oriented text format** (`to_text`/`from_text`) — a
//!   human-readable script form for examples, debugging and golden tests.

use crate::ids::ImageId;
use crate::matrix::Matrix3;
use crate::ops::EditOp;
use crate::sequence::EditSequence;
use crate::{EditError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mmdb_imaging::{Rect, Rgb};

const MAGIC: &[u8; 4] = b"EDSQ";
const VERSION: u8 = 1;

const TAG_DEFINE: u8 = 0;
const TAG_COMBINE: u8 = 1;
const TAG_MODIFY: u8 = 2;
const TAG_MUTATE: u8 = 3;
const TAG_MERGE_NULL: u8 = 4;
const TAG_MERGE_TARGET: u8 = 5;

/// Encodes a sequence into the compact binary format.
pub fn encode(seq: &EditSequence) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + seq.ops.len() * 40);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(seq.base.raw());
    buf.put_u32_le(seq.ops.len() as u32);
    for op in &seq.ops {
        match op {
            EditOp::Define { region } => {
                buf.put_u8(TAG_DEFINE);
                buf.put_i64_le(region.x0);
                buf.put_i64_le(region.y0);
                buf.put_i64_le(region.x1);
                buf.put_i64_le(region.y1);
            }
            EditOp::Combine { weights } => {
                buf.put_u8(TAG_COMBINE);
                for w in weights {
                    buf.put_f32_le(*w);
                }
            }
            EditOp::Modify { from, to } => {
                buf.put_u8(TAG_MODIFY);
                buf.put_slice(&from.channels());
                buf.put_slice(&to.channels());
            }
            EditOp::Mutate { matrix } => {
                buf.put_u8(TAG_MUTATE);
                for v in matrix.flatten() {
                    buf.put_f64_le(v);
                }
            }
            EditOp::Merge {
                target: None,
                xp,
                yp,
            } => {
                buf.put_u8(TAG_MERGE_NULL);
                buf.put_i64_le(*xp);
                buf.put_i64_le(*yp);
            }
            EditOp::Merge {
                target: Some(id),
                xp,
                yp,
            } => {
                buf.put_u8(TAG_MERGE_TARGET);
                buf.put_u64_le(id.raw());
                buf.put_i64_le(*xp);
                buf.put_i64_le(*yp);
            }
        }
    }
    buf.freeze()
}

/// Decodes the compact binary format.
pub fn decode(mut bytes: &[u8]) -> Result<EditSequence> {
    fn need(buf: &[u8], n: usize, what: &str) -> Result<()> {
        if buf.remaining() < n {
            Err(EditError::Codec(format!("truncated {what}")))
        } else {
            Ok(())
        }
    }
    need(bytes, 4 + 1 + 8 + 4, "header")?;
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(EditError::Codec(format!("bad magic {magic:?}")));
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(EditError::Codec(format!("unsupported version {version}")));
    }
    let base = ImageId::new(bytes.get_u64_le());
    let count = bytes.get_u32_le() as usize;
    // Each op is at least 7 bytes (tag + modify payload); reject counts the
    // remaining buffer cannot possibly satisfy before allocating.
    if count > bytes.remaining() {
        return Err(EditError::Codec(format!(
            "op count {count} exceeds remaining payload"
        )));
    }
    let mut ops = Vec::with_capacity(count);
    for i in 0..count {
        need(bytes, 1, "op tag")?;
        let tag = bytes.get_u8();
        let op = match tag {
            TAG_DEFINE => {
                need(bytes, 32, "define payload")?;
                EditOp::Define {
                    region: Rect::new(
                        bytes.get_i64_le(),
                        bytes.get_i64_le(),
                        bytes.get_i64_le(),
                        bytes.get_i64_le(),
                    ),
                }
            }
            TAG_COMBINE => {
                need(bytes, 36, "combine payload")?;
                let mut weights = [0.0f32; 9];
                for w in &mut weights {
                    *w = bytes.get_f32_le();
                }
                EditOp::Combine { weights }
            }
            TAG_MODIFY => {
                need(bytes, 6, "modify payload")?;
                let mut c = [0u8; 6];
                bytes.copy_to_slice(&mut c);
                EditOp::Modify {
                    from: Rgb::new(c[0], c[1], c[2]),
                    to: Rgb::new(c[3], c[4], c[5]),
                }
            }
            TAG_MUTATE => {
                need(bytes, 72, "mutate payload")?;
                let mut v = [0.0f64; 9];
                for x in &mut v {
                    *x = bytes.get_f64_le();
                }
                EditOp::Mutate {
                    matrix: Matrix3::from_flat(v),
                }
            }
            TAG_MERGE_NULL => {
                need(bytes, 16, "merge payload")?;
                EditOp::Merge {
                    target: None,
                    xp: bytes.get_i64_le(),
                    yp: bytes.get_i64_le(),
                }
            }
            TAG_MERGE_TARGET => {
                need(bytes, 24, "merge payload")?;
                EditOp::Merge {
                    target: Some(ImageId::new(bytes.get_u64_le())),
                    xp: bytes.get_i64_le(),
                    yp: bytes.get_i64_le(),
                }
            }
            other => {
                return Err(EditError::Codec(format!(
                    "unknown op tag {other} at op {i}"
                )));
            }
        };
        ops.push(op);
    }
    Ok(EditSequence::new(base, ops))
}

/// Renders a sequence as a line-oriented script.
pub fn to_text(seq: &EditSequence) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "base {}", seq.base.raw());
    for op in &seq.ops {
        match op {
            EditOp::Define { region } => {
                let _ = writeln!(
                    out,
                    "define {} {} {} {}",
                    region.x0, region.y0, region.x1, region.y1
                );
            }
            EditOp::Combine { weights } => {
                let ws: Vec<String> = weights.iter().map(|w| format!("{w}")).collect();
                let _ = writeln!(out, "combine {}", ws.join(" "));
            }
            EditOp::Modify { from, to } => {
                let _ = writeln!(out, "modify {from:?} {to:?}");
            }
            EditOp::Mutate { matrix } => {
                let vs: Vec<String> = matrix.flatten().iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "mutate {}", vs.join(" "));
            }
            EditOp::Merge { target, xp, yp } => match target {
                None => {
                    let _ = writeln!(out, "merge null {xp} {yp}");
                }
                Some(id) => {
                    let _ = writeln!(out, "merge {} {xp} {yp}", id.raw());
                }
            },
        }
    }
    out
}

/// Parses the line-oriented script format produced by [`to_text`]. Blank
/// lines and `//` comments are skipped (`#` is reserved for hex colors).
pub fn from_text(text: &str) -> Result<EditSequence> {
    let mut base: Option<ImageId> = None;
    let mut ops = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line has a token");
        let rest: Vec<&str> = parts.collect();
        let err = |msg: &str| EditError::Codec(format!("line {}: {msg}", lineno + 1));
        match head {
            "base" => {
                let id = rest
                    .first()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err("expected `base <id>`"))?;
                base = Some(ImageId::new(id));
            }
            "define" => {
                if rest.len() != 4 {
                    return Err(err("expected `define x0 y0 x1 y1`"));
                }
                let v: Vec<i64> = rest
                    .iter()
                    .map(|s| s.parse::<i64>())
                    .collect::<std::result::Result<_, _>>()
                    .map_err(|_| err("non-integer define coordinate"))?;
                ops.push(EditOp::Define {
                    region: Rect::new(v[0], v[1], v[2], v[3]),
                });
            }
            "combine" => {
                if rest.len() != 9 {
                    return Err(err("expected 9 combine weights"));
                }
                let mut weights = [0.0f32; 9];
                for (slot, s) in weights.iter_mut().zip(&rest) {
                    *slot = s.parse().map_err(|_| err("non-numeric combine weight"))?;
                }
                ops.push(EditOp::Combine { weights });
            }
            "modify" => {
                if rest.len() != 2 {
                    return Err(err("expected `modify #from #to`"));
                }
                let from = Rgb::from_hex(rest[0]).ok_or_else(|| err("bad `from` color"))?;
                let to = Rgb::from_hex(rest[1]).ok_or_else(|| err("bad `to` color"))?;
                ops.push(EditOp::Modify { from, to });
            }
            "mutate" => {
                if rest.len() != 9 {
                    return Err(err("expected 9 mutate matrix values"));
                }
                let mut v = [0.0f64; 9];
                for (slot, s) in v.iter_mut().zip(&rest) {
                    *slot = s.parse().map_err(|_| err("non-numeric matrix value"))?;
                }
                ops.push(EditOp::Mutate {
                    matrix: Matrix3::from_flat(v),
                });
            }
            "merge" => {
                if rest.len() != 3 {
                    return Err(err("expected `merge <target|null> xp yp`"));
                }
                let target = if rest[0].eq_ignore_ascii_case("null") {
                    None
                } else {
                    Some(ImageId::new(
                        rest[0]
                            .parse::<u64>()
                            .map_err(|_| err("bad merge target"))?,
                    ))
                };
                let xp = rest[1].parse::<i64>().map_err(|_| err("bad xp"))?;
                let yp = rest[2].parse::<i64>().map_err(|_| err("bad yp"))?;
                ops.push(EditOp::Merge { target, xp, yp });
            }
            other => return Err(err(&format!("unknown directive {other:?}"))),
        }
    }
    let base = base.ok_or_else(|| EditError::Codec("missing `base <id>` line".into()))?;
    Ok(EditSequence::new(base, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EditSequence {
        EditSequence::builder(ImageId::new(17))
            .define(Rect::new(1, 2, 30, 40))
            .modify(Rgb::new(250, 0, 10), Rgb::new(0, 128, 255))
            .combine([1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0])
            .mutate(Matrix3::rotation_about(0.5, 16.0, 16.0))
            .crop_to_region()
            .merge_into(ImageId::new(99), -3, 7)
            .build()
    }

    #[test]
    fn binary_roundtrip() {
        let seq = sample();
        let bytes = encode(&seq);
        let back = decode(&bytes).unwrap();
        assert_eq!(seq, back);
    }

    #[test]
    fn binary_is_compact() {
        let bytes = encode(&sample());
        assert!(bytes.len() < 250, "encoded size {}", bytes.len());
    }

    #[test]
    fn binary_rejects_corruption() {
        let bytes = encode(&sample());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode(&bad).is_err());
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 9;
        assert!(decode(&bad).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Unknown tag.
        let mut bad = bytes.to_vec();
        bad[17] = 200;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn binary_rejects_huge_count() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"EDSQ");
        buf.push(1);
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn empty_sequence_roundtrip() {
        let seq = EditSequence::new(ImageId::new(3), vec![]);
        assert_eq!(decode(&encode(&seq)).unwrap(), seq);
    }

    #[test]
    fn text_roundtrip() {
        let seq = sample();
        let text = to_text(&seq);
        let back = from_text(&text).unwrap();
        assert_eq!(seq, back);
    }

    #[test]
    fn text_parses_comments_and_blanks() {
        let text = "\n// a script\nbase 5\n\ndefine 0 0 4 4  // select\nmodify #ff0000 #00ff00\nmerge null 0 0\n";
        let seq = from_text(text).unwrap();
        assert_eq!(seq.base, ImageId::new(5));
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn text_errors_are_line_numbered() {
        let err = from_text("base 1\ndefine 1 2 3\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(from_text("define 0 0 1 1\n").is_err(), "missing base");
        assert!(from_text("base 1\nfrobnicate\n").is_err());
        assert!(from_text("base 1\nmodify red green\n").is_err());
        assert!(from_text("base 1\nmerge x 0 0\n").is_err());
        assert!(from_text("base 1\ncombine 1 2 3\n").is_err());
    }

    #[test]
    fn text_merge_null_case_insensitive() {
        let seq = from_text("base 1\nmerge NULL 2 3\n").unwrap();
        assert_eq!(
            seq.ops[0],
            EditOp::Merge {
                target: None,
                xp: 2,
                yp: 3
            }
        );
    }
}

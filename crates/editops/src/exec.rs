//! The instantiation engine.
//!
//! §2: an edited image "can be instantiated by accessing the referenced base
//! image and sequentially executing the associated editing operations". This
//! module is that executor. It is deliberately the *expensive* path — the
//! whole point of the paper is answering queries without running it — but it
//! is also the ground truth: the property tests in `mmdb-rules` check the
//! rule-derived bounds against histograms of images produced here.

use crate::ids::ImageId;
use crate::ops::EditOp;
use crate::sequence::EditSequence;
use crate::{EditError, Result};
use mmdb_imaging::{RasterImage, Rect, Rgb};
use std::collections::HashMap;

/// Upper bound on instantiated canvas size (pixels), guarding against
/// pathological transform parameters blowing up memory.
pub const MAX_CANVAS_PIXELS: u64 = 1 << 26; // 64 Mpx ≈ 256 MiB of RGB

/// Resolves image ids to rasters. The storage engine implements this; tests
/// use [`MapResolver`].
pub trait ImageResolver {
    /// Fetches the instantiated raster for `id`.
    fn resolve(&self, id: ImageId) -> Result<RasterImage>;
}

/// A trivial in-memory resolver backed by a `HashMap`.
#[derive(Default, Clone)]
pub struct MapResolver {
    images: HashMap<ImageId, RasterImage>,
}

impl MapResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `image` under `id`, replacing any previous entry.
    pub fn insert(&mut self, id: ImageId, image: RasterImage) {
        self.images.insert(id, image);
    }
}

impl ImageResolver for MapResolver {
    fn resolve(&self, id: ImageId) -> Result<RasterImage> {
        self.images
            .get(&id)
            .cloned()
            .ok_or(EditError::UnknownImage(id))
    }
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Fill color for canvas areas not covered by either the merge target or
    /// the pasted region.
    pub background: Rgb,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            background: Rgb::BLACK,
        }
    }
}

/// Mutable execution state threaded through the operation list: the working
/// raster plus the current defined region (always clipped to the raster).
#[derive(Clone, Debug)]
pub struct ExecState {
    /// The working image.
    pub image: RasterImage,
    /// The current defined region, clipped to `image`.
    pub region: Rect,
}

impl ExecState {
    /// Initializes state from a base image; the initial DR covers the whole
    /// image (ops before any `Define` edit everything).
    pub fn new(image: RasterImage) -> Self {
        let region = image.bounds();
        ExecState { image, region }
    }
}

/// Executes edit sequences against a resolver.
pub struct InstantiationEngine<'r, R: ImageResolver + ?Sized> {
    resolver: &'r R,
    options: ExecOptions,
}

impl<'r, R: ImageResolver + ?Sized> InstantiationEngine<'r, R> {
    /// Creates an engine with default options.
    pub fn new(resolver: &'r R) -> Self {
        InstantiationEngine {
            resolver,
            options: ExecOptions::default(),
        }
    }

    /// Creates an engine with explicit options.
    pub fn with_options(resolver: &'r R, options: ExecOptions) -> Self {
        InstantiationEngine { resolver, options }
    }

    /// Instantiates a stored edit sequence into a raster.
    pub fn instantiate(&self, seq: &EditSequence) -> Result<RasterImage> {
        let base = self.resolver.resolve(seq.base)?;
        let mut state = ExecState::new(base);
        for op in &seq.ops {
            self.apply(&mut state, op)?;
        }
        Ok(state.image)
    }

    /// Applies a single operation to `state`.
    pub fn apply(&self, state: &mut ExecState, op: &EditOp) -> Result<()> {
        match op {
            EditOp::Define { region } => {
                state.region = region.intersect(&state.image.bounds());
                Ok(())
            }
            EditOp::Combine { weights } => {
                apply_combine(state, weights);
                Ok(())
            }
            EditOp::Modify { from, to } => {
                apply_modify(state, *from, *to);
                Ok(())
            }
            EditOp::Mutate { matrix } => apply_mutate(state, matrix, self.options.background),
            EditOp::Merge { target, xp, yp } => match target {
                None => apply_crop(state),
                Some(id) => {
                    let target_img = self.resolver.resolve(*id)?;
                    apply_merge(state, &target_img, *xp, *yp, self.options.background)
                }
            },
        }
    }
}

fn apply_combine(state: &mut ExecState, weights: &[f32; 9]) {
    let sum: f32 = weights.iter().sum();
    if sum == 0.0 || state.region.is_empty() {
        return;
    }
    let src = state.image.clone();
    let (w, h) = (src.width() as i64, src.height() as i64);
    for y in state.region.y0..state.region.y1 {
        for x in state.region.x0..state.region.x1 {
            let (mut r, mut g, mut b) = (0.0f32, 0.0f32, 0.0f32);
            for (i, &wt) in weights.iter().enumerate() {
                if wt == 0.0 {
                    continue;
                }
                let nx = (x + (i as i64 % 3) - 1).clamp(0, w - 1);
                let ny = (y + (i as i64 / 3) - 1).clamp(0, h - 1);
                let c = src.get(nx as u32, ny as u32);
                r += wt * c.r as f32;
                g += wt * c.g as f32;
                b += wt * c.b as f32;
            }
            let quant = |v: f32| (v / sum).round().clamp(0.0, 255.0) as u8;
            state
                .image
                .set(x as u32, y as u32, Rgb::new(quant(r), quant(g), quant(b)));
        }
    }
}

fn apply_modify(state: &mut ExecState, from: Rgb, to: Rgb) {
    if state.region.is_empty() {
        return;
    }
    let w = state.image.width() as usize;
    let (x0, x1) = (state.region.x0 as usize, state.region.x1 as usize);
    for y in state.region.y0 as usize..state.region.y1 as usize {
        for p in &mut state.image.pixels_mut()[y * w + x0..y * w + x1] {
            if *p == from {
                *p = to;
            }
        }
    }
}

fn apply_mutate(state: &mut ExecState, matrix: &crate::Matrix3, background: Rgb) -> Result<()> {
    if !matrix.is_affine() {
        // Rotations, scales and translations — the transformations the paper
        // names — are all affine. Rejecting projective matrices keeps the
        // geometry reasoning of the rule engine exact (the bounding box of
        // transformed corners bounds the transformed region).
        return Err(EditError::InvalidOperation(
            "mutate matrix must be affine (last row 0 0 1)".into(),
        ));
    }
    if state.region.is_empty() {
        return Ok(());
    }
    let whole = state.region == state.image.bounds();
    if whole && matrix.is_axis_scale() {
        return apply_whole_image_scale(state, matrix, background);
    }
    apply_region_transform(state, matrix)
}

/// Whole-image axis-aligned scale (+translation, which is irrelevant for a
/// full-canvas resize): the canvas is resized by `M11 × M22` and resampled
/// with nearest-neighbour inverse mapping — Table 1's "DR contains image"
/// case.
fn apply_whole_image_scale(
    state: &mut ExecState,
    matrix: &crate::Matrix3,
    _background: Rgb,
) -> Result<()> {
    let sx = matrix.m[0][0];
    let sy = matrix.m[1][1];
    let old_w = state.image.width();
    let old_h = state.image.height();
    let new_w = ((old_w as f64 * sx).round() as i64).max(1) as u32;
    let new_h = ((old_h as f64 * sy).round() as i64).max(1) as u32;
    if new_w as u64 * new_h as u64 > MAX_CANVAS_PIXELS {
        return Err(EditError::InvalidOperation(format!(
            "mutate would produce a {new_w}x{new_h} canvas, over the {MAX_CANVAS_PIXELS}-pixel cap"
        )));
    }
    let src = state.image.clone();
    let resized = RasterImage::from_fn(new_w, new_h, |x, y| {
        let sxf = ((x as f64 + 0.5) * old_w as f64 / new_w as f64) as u32;
        let syf = ((y as f64 + 0.5) * old_h as f64 / new_h as f64) as u32;
        src.get(sxf.min(old_w - 1), syf.min(old_h - 1))
    })?;
    state.image = resized;
    state.region = state.image.bounds();
    Ok(())
}

/// Sub-region (or non-axis-scale whole-image) transform with copy ("stamp")
/// semantics: the DR content appears at its transformed position; source
/// pixels not overwritten keep their value. Canvas dimensions are unchanged
/// (Table 1's rigid-body case keeps the total constant).
fn apply_region_transform(state: &mut ExecState, matrix: &crate::Matrix3) -> Result<()> {
    let src = state.image.clone();
    let dr = state.region;
    // Transformed bounding box of the DR corners.
    let corners = [
        (dr.x0 as f64, dr.y0 as f64),
        (dr.x1 as f64, dr.y0 as f64),
        (dr.x0 as f64, dr.y1 as f64),
        (dr.x1 as f64, dr.y1 as f64),
    ];
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for (cx, cy) in corners {
        let (tx, ty) = matrix.apply(cx, cy);
        min_x = min_x.min(tx);
        min_y = min_y.min(ty);
        max_x = max_x.max(tx);
        max_y = max_y.max(ty);
    }
    if !(min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite()) {
        return Err(EditError::InvalidOperation(
            "mutate matrix produced a non-finite region".into(),
        ));
    }
    let bbox = Rect::new(
        min_x.floor() as i64,
        min_y.floor() as i64,
        max_x.ceil() as i64,
        max_y.ceil() as i64,
    );
    let dest = bbox.intersect(&state.image.bounds());
    if dest.is_empty() {
        // The region moved entirely off-canvas; stamp nothing.
        state.region = Rect::EMPTY;
        return Ok(());
    }
    match matrix.affine_inverse() {
        Some(inv) => {
            // Inverse mapping: no holes under rotation or up-scaling.
            for y in dest.y0..dest.y1 {
                for x in dest.x0..dest.x1 {
                    let (sxf, syf) = inv.apply(x as f64 + 0.5, y as f64 + 0.5);
                    let sx = sxf.floor() as i64;
                    let sy = syf.floor() as i64;
                    if dr.contains(sx, sy) {
                        if let Some(c) = src.get_signed(sx, sy) {
                            state.image.set(x as u32, y as u32, c);
                        }
                    }
                }
            }
        }
        None => {
            // Singular transform: forward-map each source pixel (the image
            // collapses onto a line/point).
            for (sx, sy) in dr.pixels() {
                let (txf, tyf) = matrix.apply(sx as f64 + 0.5, sy as f64 + 0.5);
                let tx = txf.floor() as i64;
                let ty = tyf.floor() as i64;
                if let Some(c) = src.get_signed(sx, sy) {
                    if tx >= 0
                        && ty >= 0
                        && tx < state.image.width() as i64
                        && ty < state.image.height() as i64
                    {
                        state.image.set(tx as u32, ty as u32, c);
                    }
                }
            }
        }
    }
    state.region = dest;
    Ok(())
}

/// NULL-target `Merge`: the image becomes the DR content alone.
fn apply_crop(state: &mut ExecState) -> Result<()> {
    let cropped = state.image.crop(&state.region).ok_or_else(|| {
        EditError::InvalidOperation("merge(NULL) with empty defined region".into())
    })?;
    state.image = cropped;
    state.region = state.image.bounds();
    Ok(())
}

/// Target `Merge`: paste the DR into `target` at `(xp, yp)`. The canvas is
/// the union of the target's bounds and the pasted rectangle (Table 1's
/// total-pixels formula); gaps are `background`.
fn apply_merge(
    state: &mut ExecState,
    target: &RasterImage,
    xp: i64,
    yp: i64,
    background: Rgb,
) -> Result<()> {
    let dr = state.region;
    let dest = Rect::from_origin_size(xp, yp, dr.width(), dr.height());
    let canvas_rect = target.bounds().union(&dest);
    if canvas_rect.area() > MAX_CANVAS_PIXELS {
        return Err(EditError::InvalidOperation(format!(
            "merge would produce a {}x{} canvas, over the {MAX_CANVAS_PIXELS}-pixel cap",
            canvas_rect.width(),
            canvas_rect.height()
        )));
    }
    let (off_x, off_y) = (-canvas_rect.x0, -canvas_rect.y0);
    let mut canvas = RasterImage::filled(
        canvas_rect.width() as u32,
        canvas_rect.height() as u32,
        background,
    )?;
    // Blit the target at its (offset) position.
    for y in 0..target.height() {
        for x in 0..target.width() {
            canvas.set(
                (x as i64 + off_x) as u32,
                (y as i64 + off_y) as u32,
                target.get(x, y),
            );
        }
    }
    // Paste the DR content over it.
    if !dr.is_empty() {
        for (sx, sy) in dr.pixels() {
            let c = state
                .image
                .get_signed(sx, sy)
                .expect("DR is clipped to the image");
            let tx = sx - dr.x0 + xp + off_x;
            let ty = sy - dr.y0 + yp + off_y;
            canvas.set(tx as u32, ty as u32, c);
        }
    }
    state.region = dest.translate(off_x, off_y).intersect(&canvas.bounds());
    state.image = canvas;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix3;

    fn resolver_with(base: RasterImage) -> MapResolver {
        let mut r = MapResolver::new();
        r.insert(ImageId::new(1), base);
        r
    }

    fn checker(w: u32, h: u32) -> RasterImage {
        RasterImage::from_fn(w, h, |x, y| {
            if (x + y) % 2 == 0 {
                Rgb::RED
            } else {
                Rgb::BLUE
            }
        })
        .unwrap()
    }

    #[test]
    fn empty_sequence_reproduces_base() {
        let base = checker(8, 8);
        let r = resolver_with(base.clone());
        let engine = InstantiationEngine::new(&r);
        let out = engine
            .instantiate(&EditSequence::new(ImageId::new(1), vec![]))
            .unwrap();
        assert_eq!(out, base);
    }

    #[test]
    fn unknown_base_errors() {
        let r = MapResolver::new();
        let engine = InstantiationEngine::new(&r);
        let err = engine
            .instantiate(&EditSequence::new(ImageId::new(77), vec![]))
            .unwrap_err();
        assert!(matches!(err, EditError::UnknownImage(id) if id == ImageId::new(77)));
    }

    #[test]
    fn modify_respects_defined_region() {
        let base = RasterImage::filled(4, 4, Rgb::RED).unwrap();
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 2, 4))
            .modify(Rgb::RED, Rgb::GREEN)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.count_color(Rgb::GREEN), 8);
        assert_eq!(out.count_color(Rgb::RED), 8);
        assert_eq!(out.get(0, 0), Rgb::GREEN);
        assert_eq!(out.get(3, 0), Rgb::RED);
    }

    #[test]
    fn modify_without_define_edits_everything() {
        let base = RasterImage::filled(4, 4, Rgb::RED).unwrap();
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .modify(Rgb::RED, Rgb::BLUE)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.count_color(Rgb::BLUE), 16);
    }

    #[test]
    fn combine_uniform_on_flat_image_is_identity() {
        let base = RasterImage::filled(6, 6, Rgb::new(100, 150, 200)).unwrap();
        let r = resolver_with(base.clone());
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1)).blur().build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out, base);
    }

    #[test]
    fn combine_blurs_edges_between_regions() {
        // Left half black, right half white; blur mixes the boundary column.
        let base =
            RasterImage::from_fn(8, 4, |x, _| if x < 4 { Rgb::BLACK } else { Rgb::WHITE }).unwrap();
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1)).blur().build();
        let out = engine.instantiate(&seq).unwrap();
        let boundary = out.get(4, 2);
        assert!(
            boundary != Rgb::BLACK && boundary != Rgb::WHITE,
            "{boundary:?}"
        );
        // Far columns keep their color.
        assert_eq!(out.get(0, 0), Rgb::BLACK);
        assert_eq!(out.get(7, 0), Rgb::WHITE);
    }

    #[test]
    fn combine_identity_kernel_is_noop() {
        let base = checker(5, 5);
        let r = resolver_with(base.clone());
        let engine = InstantiationEngine::new(&r);
        let mut weights = [0.0f32; 9];
        weights[4] = 1.0; // center only
        let seq = EditSequence::builder(ImageId::new(1))
            .combine(weights)
            .build();
        assert_eq!(engine.instantiate(&seq).unwrap(), base);
    }

    #[test]
    fn combine_zero_kernel_is_noop() {
        let base = checker(5, 5);
        let r = resolver_with(base.clone());
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .combine([0.0; 9])
            .build();
        assert_eq!(engine.instantiate(&seq).unwrap(), base);
    }

    #[test]
    fn crop_to_region() {
        let base = RasterImage::from_fn(8, 8, |x, y| Rgb::new(x as u8, y as u8, 0)).unwrap();
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(2, 3, 6, 5))
            .crop_to_region()
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 4);
        assert_eq!(out.height(), 2);
        assert_eq!(out.get(0, 0), Rgb::new(2, 3, 0));
    }

    #[test]
    fn crop_with_offcanvas_region_errors() {
        let base = checker(4, 4);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(100, 100, 120, 120)) // clips to empty
            .crop_to_region()
            .build();
        assert!(matches!(
            engine.instantiate(&seq),
            Err(EditError::InvalidOperation(_))
        ));
    }

    #[test]
    fn whole_image_scale_resizes_canvas() {
        let base = checker(10, 10);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(2.0, 3.0)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 20);
        assert_eq!(out.height(), 30);
        // Color population scales with area: red covered half before, half after.
        let red_frac = out.count_color(Rgb::RED) as f64 / out.pixel_count() as f64;
        assert!((red_frac - 0.5).abs() < 0.1, "red fraction {red_frac}");
    }

    #[test]
    fn scale_down_shrinks() {
        let base = checker(10, 10);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(0.5, 0.5)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 5);
        assert_eq!(out.height(), 5);
    }

    #[test]
    fn translate_stamps_region_and_keeps_canvas_size() {
        let mut base = RasterImage::filled(10, 10, Rgb::BLACK).unwrap();
        mmdb_imaging::draw::fill_rect(&mut base, &Rect::new(0, 0, 3, 3), Rgb::GREEN);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 3, 3))
            .translate(5.0, 5.0)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 10);
        assert_eq!(out.height(), 10);
        // Copy semantics: both the original and the stamped copy are green.
        assert_eq!(out.get(0, 0), Rgb::GREEN);
        assert_eq!(out.get(6, 6), Rgb::GREEN);
        assert_eq!(out.count_color(Rgb::GREEN), 18);
    }

    #[test]
    fn translate_off_canvas_clips() {
        let mut base = RasterImage::filled(8, 8, Rgb::BLACK).unwrap();
        mmdb_imaging::draw::fill_rect(&mut base, &Rect::new(0, 0, 2, 2), Rgb::RED);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 2, 2))
            .translate(100.0, 0.0)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        // Nothing stamped; original remains (copy semantics).
        assert_eq!(out.count_color(Rgb::RED), 4);
    }

    #[test]
    fn rotation_preserves_canvas_and_moves_content() {
        let mut base = RasterImage::filled(21, 21, Rgb::BLACK).unwrap();
        mmdb_imaging::draw::fill_rect(&mut base, &Rect::new(8, 2, 13, 7), Rgb::WHITE);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        // Rotate the white block 90° about the canvas center.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(8, 2, 13, 7))
            .mutate(Matrix3::rotation_about(
                std::f64::consts::FRAC_PI_2,
                10.5,
                10.5,
            ))
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 21);
        assert_eq!(out.height(), 21);
        // Original block remains (copy semantics) and a rotated copy appears
        // on the left side (90° CCW of "top" is "left" in image coordinates).
        assert_eq!(out.get(10, 4), Rgb::WHITE);
        assert!(out.count_color(Rgb::WHITE) > 25, "rotated copy missing");
    }

    #[test]
    fn merge_into_target_at_interior() {
        let mut base = RasterImage::filled(6, 6, Rgb::BLACK).unwrap();
        mmdb_imaging::draw::fill_rect(&mut base, &Rect::new(0, 0, 2, 2), Rgb::RED);
        let target = RasterImage::filled(10, 10, Rgb::WHITE).unwrap();
        let mut r = resolver_with(base);
        r.insert(ImageId::new(2), target);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 2, 2))
            .merge_into(ImageId::new(2), 4, 4)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 10);
        assert_eq!(out.height(), 10);
        assert_eq!(out.get(4, 4), Rgb::RED);
        assert_eq!(out.get(5, 5), Rgb::RED);
        assert_eq!(out.count_color(Rgb::RED), 4);
        assert_eq!(out.count_color(Rgb::WHITE), 96);
    }

    #[test]
    fn merge_extending_beyond_target_grows_canvas() {
        let mut base = RasterImage::filled(4, 4, Rgb::BLACK).unwrap();
        mmdb_imaging::draw::fill_rect(&mut base, &Rect::new(0, 0, 3, 3), Rgb::GREEN);
        let target = RasterImage::filled(5, 5, Rgb::WHITE).unwrap();
        let mut r = resolver_with(base);
        r.insert(ImageId::new(2), target);
        let engine = InstantiationEngine::new(&r);
        // Paste a 3x3 region at (4,4): canvas becomes 7x7 with a background gap.
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 3, 3))
            .merge_into(ImageId::new(2), 4, 4)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 7);
        assert_eq!(out.height(), 7);
        assert_eq!(out.count_color(Rgb::GREEN), 9);
        assert_eq!(out.count_color(Rgb::WHITE), 24); // 25 minus 1 overlapped corner
                                                     // L-shaped gap is background (black): 49 - 9 - 24 = 16.
        assert_eq!(out.count_color(Rgb::BLACK), 16);
    }

    #[test]
    fn merge_with_negative_coords_extends_topleft() {
        let base = RasterImage::filled(2, 2, Rgb::RED).unwrap();
        let target = RasterImage::filled(4, 4, Rgb::WHITE).unwrap();
        let mut r = resolver_with(base);
        r.insert(ImageId::new(2), target);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .merge_into(ImageId::new(2), -2, -2)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 6);
        assert_eq!(out.height(), 6);
        assert_eq!(out.get(0, 0), Rgb::RED);
        assert_eq!(out.get(2, 2), Rgb::WHITE);
    }

    #[test]
    fn merge_unknown_target_errors() {
        let base = checker(4, 4);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .merge_into(ImageId::new(99), 0, 0)
            .build();
        assert!(matches!(
            engine.instantiate(&seq),
            Err(EditError::UnknownImage(id)) if id == ImageId::new(99)
        ));
    }

    #[test]
    fn define_clips_to_image() {
        let base = checker(4, 4);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let mut state = ExecState::new(r.resolve(ImageId::new(1)).unwrap());
        engine
            .apply(
                &mut state,
                &EditOp::Define {
                    region: Rect::new(-5, -5, 100, 2),
                },
            )
            .unwrap();
        assert_eq!(state.region, Rect::new(0, 0, 4, 2));
    }

    #[test]
    fn oversized_scale_is_rejected() {
        let base = checker(100, 100);
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .scale(10_000.0, 10_000.0)
            .build();
        assert!(matches!(
            engine.instantiate(&seq),
            Err(EditError::InvalidOperation(_))
        ));
    }

    #[test]
    fn ops_compose_in_order() {
        // modify red→green then green→blue over the whole image: all blue.
        let base = RasterImage::filled(3, 3, Rgb::RED).unwrap();
        let r = resolver_with(base);
        let engine = InstantiationEngine::new(&r);
        let seq = EditSequence::builder(ImageId::new(1))
            .modify(Rgb::RED, Rgb::GREEN)
            .modify(Rgb::GREEN, Rgb::BLUE)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.count_color(Rgb::BLUE), 9);
    }

    #[test]
    fn custom_background_used_for_merge_gap() {
        let base = RasterImage::filled(2, 2, Rgb::RED).unwrap();
        let target = RasterImage::filled(2, 2, Rgb::WHITE).unwrap();
        let mut r = resolver_with(base);
        r.insert(ImageId::new(2), target);
        let opts = ExecOptions {
            background: Rgb::new(9, 9, 9),
        };
        let engine = InstantiationEngine::with_options(&r, opts);
        let seq = EditSequence::builder(ImageId::new(1))
            .merge_into(ImageId::new(2), 3, 3)
            .build();
        let out = engine.instantiate(&seq).unwrap();
        assert_eq!(out.width(), 5);
        assert!(out.count_color(Rgb::new(9, 9, 9)) > 0);
    }
}

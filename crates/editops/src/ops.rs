//! The five editing operations of the paper (§3.2).
//!
//! > "this set of five operations is used because it has the property that
//! > its operations can be combined to perform any image transformation by
//! > manipulating a single pixel at a time"
//!
//! The operations are:
//!
//! | Op | Paper parameters | Effect |
//! |---|---|---|
//! | `Define (DR)` | region coordinates | selects the *Defined Region* edited by subsequent ops |
//! | `Combine (C1..C9)` | 3×3 neighbour weights | blurs DR pixels toward the weighted average of their neighbours |
//! | `Modify (RGBold, RGBnew)` | two colors | recolors DR pixels of color `RGBold` to `RGBnew` |
//! | `Mutate (M11..M33)` | 3×3 matrix | repositions DR pixels (rotate / scale / translate) |
//! | `Merge (target, xp, yp)` | target image + paste coords | copies the DR into `target` (or crops to the DR when `target` is NULL) |

use crate::ids::ImageId;
use crate::matrix::Matrix3;
use mmdb_imaging::{Rect, Rgb};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One editing operation in a stored sequence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EditOp {
    /// Selects the group of pixels — the *Defined Region* — that subsequent
    /// operations edit. The rectangle is clipped to the image at execution
    /// time.
    Define {
        /// Requested region, in image coordinates.
        region: Rect,
    },
    /// Blurs the defined region: each DR pixel becomes the weighted average
    /// of its 3×3 neighbourhood (weights `C1..C9`, row-major, applied to the
    /// pre-operation pixel values; edge neighbours are clamped to the image
    /// border). A zero weight-sum leaves pixels unchanged.
    Combine {
        /// Row-major 3×3 neighbour weights `C1..C9`.
        weights: [f32; 9],
    },
    /// Recolors every DR pixel whose color is exactly `from` to `to`.
    Modify {
        /// `RGBold` — the color to replace.
        from: Rgb,
        /// `RGBnew` — the replacement color.
        to: Rgb,
    },
    /// Repositions the DR pixels with a 3×3 homogeneous matrix.
    Mutate {
        /// Transform matrix `(M11..M33)`.
        matrix: Matrix3,
    },
    /// Copies the current DR into a target image at `(xp, yp)`; with no
    /// target, crops the image to the DR.
    Merge {
        /// Target image, or `None` (the paper's NULL target).
        target: Option<ImageId>,
        /// Paste x coordinate in the target.
        xp: i64,
        /// Paste y coordinate in the target.
        yp: i64,
    },
}

/// Discriminant-only view of an operation, used for statistics and
/// classification tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `Define`.
    Define,
    /// `Combine`.
    Combine,
    /// `Modify`.
    Modify,
    /// `Mutate`.
    Mutate,
    /// `Merge` with NULL target.
    MergeNull,
    /// `Merge` with a concrete target image.
    MergeTarget,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Define => "Define",
            OpKind::Combine => "Combine",
            OpKind::Modify => "Modify",
            OpKind::Mutate => "Mutate",
            OpKind::MergeNull => "Merge(NULL)",
            OpKind::MergeTarget => "Merge(target)",
        };
        f.write_str(s)
    }
}

impl EditOp {
    /// The operation's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            EditOp::Define { .. } => OpKind::Define,
            EditOp::Combine { .. } => OpKind::Combine,
            EditOp::Modify { .. } => OpKind::Modify,
            EditOp::Mutate { .. } => OpKind::Mutate,
            EditOp::Merge { target: None, .. } => OpKind::MergeNull,
            EditOp::Merge {
                target: Some(_), ..
            } => OpKind::MergeTarget,
        }
    }

    /// The merge target referenced by this operation, if any. Query
    /// processing needs this to resolve target histograms without
    /// instantiating.
    pub fn merge_target(&self) -> Option<ImageId> {
        match self {
            EditOp::Merge {
                target: Some(id), ..
            } => Some(*id),
            _ => None,
        }
    }

    /// Whether the rule associated with this operation is **bound-widening**
    /// in the sense of §4: applying it can only widen (never narrow or
    /// shift-narrow) the `[BOUNDmin/imagesize, BOUNDmax/imagesize]` range.
    ///
    /// Per the paper: "The rules for the Modify, Combine, and Mutate
    /// operations are bound-widening, and the rule for the Merge operation is
    /// bound-widening when the target parameter is null." `Define` touches no
    /// pixel, so it is trivially bound-widening as well.
    pub fn is_bound_widening(&self) -> bool {
        !matches!(self.kind(), OpKind::MergeTarget)
    }

    /// Whether this operation **reads** the current defined region — i.e.
    /// its effect depends on which DR is selected when it runs. Everything
    /// except `Define` does; a `Define` only *replaces* the DR. The dead-op
    /// analysis uses this to decide when an earlier `Define` is never
    /// observed.
    pub fn reads_region(&self) -> bool {
        !matches!(self, EditOp::Define { .. })
    }

    /// Convenience constructor: a box blur with uniform weights.
    pub fn box_blur() -> EditOp {
        EditOp::Combine { weights: [1.0; 9] }
    }

    /// Convenience constructor: define the whole image as the region.
    pub fn define_all() -> EditOp {
        EditOp::Define {
            region: Rect::new(0, 0, i64::MAX / 4, i64::MAX / 4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display() {
        assert_eq!(
            EditOp::Define {
                region: Rect::new(0, 0, 1, 1)
            }
            .kind(),
            OpKind::Define
        );
        assert_eq!(EditOp::box_blur().kind(), OpKind::Combine);
        assert_eq!(
            EditOp::Modify {
                from: Rgb::RED,
                to: Rgb::BLUE
            }
            .kind(),
            OpKind::Modify
        );
        assert_eq!(
            EditOp::Mutate {
                matrix: Matrix3::IDENTITY
            }
            .kind(),
            OpKind::Mutate
        );
        assert_eq!(
            EditOp::Merge {
                target: None,
                xp: 0,
                yp: 0
            }
            .kind(),
            OpKind::MergeNull
        );
        let mt = EditOp::Merge {
            target: Some(ImageId::new(3)),
            xp: 1,
            yp: 2,
        };
        assert_eq!(mt.kind(), OpKind::MergeTarget);
        assert_eq!(mt.kind().to_string(), "Merge(target)");
        assert_eq!(mt.merge_target(), Some(ImageId::new(3)));
    }

    #[test]
    fn bound_widening_classification_matches_section_4() {
        let bw = [
            EditOp::define_all(),
            EditOp::box_blur(),
            EditOp::Modify {
                from: Rgb::RED,
                to: Rgb::GREEN,
            },
            EditOp::Mutate {
                matrix: Matrix3::translation(3.0, 4.0),
            },
            EditOp::Merge {
                target: None,
                xp: 0,
                yp: 0,
            },
        ];
        for op in &bw {
            assert!(
                op.is_bound_widening(),
                "{:?} should be bound-widening",
                op.kind()
            );
        }
        let nbw = EditOp::Merge {
            target: Some(ImageId::new(1)),
            xp: 0,
            yp: 0,
        };
        assert!(!nbw.is_bound_widening());
    }

    #[test]
    fn merge_target_absent_for_other_ops() {
        assert_eq!(EditOp::box_blur().merge_target(), None);
        assert_eq!(
            EditOp::Merge {
                target: None,
                xp: 5,
                yp: 5
            }
            .merge_target(),
            None
        );
    }
}

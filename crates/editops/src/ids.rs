//! Image identifiers shared across the storage and retrieval layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of an image object in the MMDBMS.
///
/// Both conventionally-stored (binary) images and edited images stored as
/// operation sequences carry an `ImageId`; an [`crate::EditSequence`] refers
/// to its base image — and a `Merge` operation to its target image — by this
/// id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct ImageId(pub u64);

impl ImageId {
    /// Creates an id from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        ImageId(raw)
    }

    /// Raw numeric value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img#{}", self.0)
    }
}

impl fmt::Debug for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img#{}", self.0)
    }
}

impl From<u64> for ImageId {
    fn from(raw: u64) -> Self {
        ImageId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_and_raw() {
        let id = ImageId::new(42);
        assert_eq!(id.to_string(), "img#42");
        assert_eq!(id.raw(), 42);
        assert_eq!(ImageId::from(42u64), id);
    }

    #[test]
    fn ordering_and_hashing() {
        assert!(ImageId::new(1) < ImageId::new(2));
        let mut set = HashSet::new();
        set.insert(ImageId::new(7));
        assert!(set.contains(&ImageId::new(7)));
        assert!(!set.contains(&ImageId::new(8)));
    }
}

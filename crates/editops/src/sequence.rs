//! The stored form of an edited image: base reference + operation list.

use crate::ids::ImageId;
use crate::matrix::Matrix3;
use crate::ops::{EditOp, OpKind};
use mmdb_imaging::{Rect, Rgb};
use serde::{Deserialize, Serialize};

/// An edited image stored "as a reference to b along with the sequence of
/// operations used to change b into e" (§2).
///
/// This is the space-saving storage format the paper is built around: an
/// `EditSequence` occupies tens of bytes where the instantiated raster would
/// occupy megabytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EditSequence {
    /// The referenced base image.
    pub base: ImageId,
    /// Operations executed in order against the base image.
    pub ops: Vec<EditOp>,
}

impl EditSequence {
    /// Creates a sequence from parts.
    pub fn new(base: ImageId, ops: Vec<EditOp>) -> Self {
        EditSequence { base, ops }
    }

    /// Starts a fluent builder rooted at `base`.
    pub fn builder(base: ImageId) -> SequenceBuilder {
        SequenceBuilder {
            seq: EditSequence::new(base, Vec::new()),
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the sequence holds no operation (the edited image equals
    /// its base).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True when *every* operation's rule is bound-widening — the §4
    /// condition for the image to enter the BWM Main component.
    pub fn all_bound_widening(&self) -> bool {
        self.ops.iter().all(EditOp::is_bound_widening)
    }

    /// All merge-target image ids referenced by the sequence, in order of
    /// appearance (duplicates preserved). The rule engine must resolve the
    /// histograms of these images.
    pub fn merge_targets(&self) -> Vec<ImageId> {
        self.ops.iter().filter_map(EditOp::merge_target).collect()
    }

    /// Per-kind operation counts, for dataset statistics (Table 2 reports
    /// "average number of operations within an edited image").
    pub fn kind_histogram(&self) -> [(OpKind, usize); 6] {
        let mut counts = [
            (OpKind::Define, 0),
            (OpKind::Combine, 0),
            (OpKind::Modify, 0),
            (OpKind::Mutate, 0),
            (OpKind::MergeNull, 0),
            (OpKind::MergeTarget, 0),
        ];
        for op in &self.ops {
            let k = op.kind();
            for slot in &mut counts {
                if slot.0 == k {
                    slot.1 += 1;
                }
            }
        }
        counts
    }
}

/// Fluent builder for [`EditSequence`], mirroring how an editing front-end
/// would record user actions.
#[derive(Clone, Debug)]
pub struct SequenceBuilder {
    seq: EditSequence,
}

impl SequenceBuilder {
    /// Appends a `Define` selecting `region`.
    pub fn define(mut self, region: Rect) -> Self {
        self.seq.ops.push(EditOp::Define { region });
        self
    }

    /// Appends a `Define` selecting the entire image.
    pub fn define_all(mut self) -> Self {
        self.seq.ops.push(EditOp::define_all());
        self
    }

    /// Appends a `Combine` with explicit weights.
    pub fn combine(mut self, weights: [f32; 9]) -> Self {
        self.seq.ops.push(EditOp::Combine { weights });
        self
    }

    /// Appends a uniform box blur.
    pub fn blur(mut self) -> Self {
        self.seq.ops.push(EditOp::box_blur());
        self
    }

    /// Appends a `Modify` recoloring `from` → `to`.
    pub fn modify(mut self, from: Rgb, to: Rgb) -> Self {
        self.seq.ops.push(EditOp::Modify { from, to });
        self
    }

    /// Appends a `Mutate` with the given matrix.
    pub fn mutate(mut self, matrix: Matrix3) -> Self {
        self.seq.ops.push(EditOp::Mutate { matrix });
        self
    }

    /// Appends a translation `Mutate`.
    pub fn translate(self, dx: f64, dy: f64) -> Self {
        self.mutate(Matrix3::translation(dx, dy))
    }

    /// Appends a whole-image scale `Mutate`.
    pub fn scale(self, sx: f64, sy: f64) -> Self {
        self.mutate(Matrix3::scale(sx, sy))
    }

    /// Appends a `Merge` into `target` at `(xp, yp)`.
    pub fn merge_into(mut self, target: ImageId, xp: i64, yp: i64) -> Self {
        self.seq.ops.push(EditOp::Merge {
            target: Some(target),
            xp,
            yp,
        });
        self
    }

    /// Appends a NULL-target `Merge` (crop to the defined region).
    pub fn crop_to_region(mut self) -> Self {
        self.seq.ops.push(EditOp::Merge {
            target: None,
            xp: 0,
            yp: 0,
        });
        self
    }

    /// Appends an arbitrary pre-built operation.
    pub fn op(mut self, op: EditOp) -> Self {
        self.seq.ops.push(op);
        self
    }

    /// Finishes the sequence.
    pub fn build(self) -> EditSequence {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_in_order() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 10, 10))
            .modify(Rgb::RED, Rgb::BLUE)
            .blur()
            .translate(5.0, 5.0)
            .build();
        assert_eq!(seq.base, ImageId::new(1));
        assert_eq!(seq.len(), 4);
        assert!(matches!(seq.ops[0], EditOp::Define { .. }));
        assert!(matches!(seq.ops[3], EditOp::Mutate { .. }));
        assert!(!seq.is_empty());
    }

    #[test]
    fn empty_sequence() {
        let seq = EditSequence::builder(ImageId::new(9)).build();
        assert!(seq.is_empty());
        assert!(seq.all_bound_widening());
        assert!(seq.merge_targets().is_empty());
    }

    #[test]
    fn bound_widening_detection() {
        let widening = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .modify(Rgb::RED, Rgb::GREEN)
            .crop_to_region()
            .build();
        assert!(widening.all_bound_widening());

        let not_widening = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 4, 4))
            .merge_into(ImageId::new(2), 3, 3)
            .build();
        assert!(!not_widening.all_bound_widening());
    }

    #[test]
    fn merge_targets_in_order_with_duplicates() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define(Rect::new(0, 0, 2, 2))
            .merge_into(ImageId::new(5), 0, 0)
            .define(Rect::new(1, 1, 3, 3))
            .merge_into(ImageId::new(4), 0, 0)
            .merge_into(ImageId::new(5), 1, 1)
            .build();
        assert_eq!(
            seq.merge_targets(),
            vec![ImageId::new(5), ImageId::new(4), ImageId::new(5)]
        );
    }

    #[test]
    fn kind_histogram_counts() {
        let seq = EditSequence::builder(ImageId::new(1))
            .define_all()
            .blur()
            .blur()
            .modify(Rgb::RED, Rgb::BLUE)
            .crop_to_region()
            .build();
        let hist = seq.kind_histogram();
        let get = |k: OpKind| hist.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert_eq!(get(OpKind::Define), 1);
        assert_eq!(get(OpKind::Combine), 2);
        assert_eq!(get(OpKind::Modify), 1);
        assert_eq!(get(OpKind::MergeNull), 1);
        assert_eq!(get(OpKind::MergeTarget), 0);
    }
}

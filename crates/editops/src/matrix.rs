//! 3×3 homogeneous transform matrices for the `Mutate` operation.
//!
//! The paper parameterizes `Mutate` with a matrix `(M11, …, M33)` "used to
//! change the locations of the pixels … rotations, scales, and translations
//! of items within an image". We use row-major homogeneous coordinates:
//!
//! ```text
//! [x']   [m11 m12 m13] [x]
//! [y'] = [m21 m22 m23] [y]
//! [1 ]   [m31 m32 m33] [1]
//! ```
//!
//! with affine transforms keeping the last row at `(0, 0, 1)`.

use serde::{Deserialize, Serialize};

/// A row-major 3×3 matrix over `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix3 {
    /// Rows of the matrix; `m[r][c]` is row `r`, column `c`.
    pub m: [[f64; 3]; 3],
}

impl Matrix3 {
    /// The identity transform.
    pub const IDENTITY: Matrix3 = Matrix3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from rows.
    pub const fn new(m: [[f64; 3]; 3]) -> Self {
        Matrix3 { m }
    }

    /// Translation by `(dx, dy)`.
    pub fn translation(dx: f64, dy: f64) -> Self {
        Matrix3::new([[1.0, 0.0, dx], [0.0, 1.0, dy], [0.0, 0.0, 1.0]])
    }

    /// Axis-aligned scale by `(sx, sy)` about the origin.
    pub fn scale(sx: f64, sy: f64) -> Self {
        Matrix3::new([[sx, 0.0, 0.0], [0.0, sy, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Counter-clockwise rotation by `radians` about `(cx, cy)`.
    pub fn rotation_about(radians: f64, cx: f64, cy: f64) -> Self {
        let (s, c) = radians.sin_cos();
        // T(c) · R · T(-c)
        Matrix3::new([
            [c, -s, cx - c * cx + s * cy],
            [s, c, cy - s * cx - c * cy],
            [0.0, 0.0, 1.0],
        ])
    }

    /// Matrix product `self · rhs` (apply `rhs` first).
    pub fn compose(&self, rhs: &Matrix3) -> Matrix3 {
        let mut out = [[0.0; 3]; 3];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        Matrix3::new(out)
    }

    /// Applies the transform to a point (homogeneous divide included).
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        let xp = self.m[0][0] * x + self.m[0][1] * y + self.m[0][2];
        let yp = self.m[1][0] * x + self.m[1][1] * y + self.m[1][2];
        let w = self.m[2][0] * x + self.m[2][1] * y + self.m[2][2];
        if w == 0.0 || w == 1.0 {
            (xp, yp)
        } else {
            (xp / w, yp / w)
        }
    }

    /// Determinant of the upper-left 2×2 linear part — the local area scale
    /// factor of an affine transform.
    pub fn linear_det(&self) -> f64 {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// True when the transform is affine (last row `0 0 1`).
    pub fn is_affine(&self) -> bool {
        self.m[2] == [0.0, 0.0, 1.0]
    }

    /// True when the matrix is exactly the identity transform. Used by the
    /// static analyzer's dead-op pass: an identity `Mutate` stamps every DR
    /// pixel onto itself and leaves the raster unchanged.
    pub fn is_identity(&self) -> bool {
        *self == Matrix3::IDENTITY
    }

    /// True when the transform preserves area (|det| = 1) — the paper's
    /// "rigid body" rule condition, which also admits shears and reflections
    /// of unit determinant.
    pub fn is_area_preserving(&self) -> bool {
        self.is_affine() && (self.linear_det().abs() - 1.0).abs() < 1e-9
    }

    /// True when the transform is an axis-aligned scale plus translation
    /// (no rotation/shear terms) — the shape Table 1's whole-image rule
    /// (`multiply by M11·M22`) describes.
    pub fn is_axis_scale(&self) -> bool {
        self.is_affine()
            && self.m[0][1] == 0.0
            && self.m[1][0] == 0.0
            && self.m[0][0] > 0.0
            && self.m[1][1] > 0.0
    }

    /// Inverse of an affine transform, or `None` when singular.
    pub fn affine_inverse(&self) -> Option<Matrix3> {
        if !self.is_affine() {
            return None;
        }
        let det = self.linear_det();
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let a = self.m[0][0];
        let b = self.m[0][1];
        let tx = self.m[0][2];
        let c = self.m[1][0];
        let d = self.m[1][1];
        let ty = self.m[1][2];
        let ia = d * inv_det;
        let ib = -b * inv_det;
        let ic = -c * inv_det;
        let id = a * inv_det;
        Some(Matrix3::new([
            [ia, ib, -(ia * tx + ib * ty)],
            [ic, id, -(ic * tx + id * ty)],
            [0.0, 0.0, 1.0],
        ]))
    }

    /// Flat `(M11..M33)` parameter list in the paper's ordering.
    pub fn flatten(&self) -> [f64; 9] {
        [
            self.m[0][0],
            self.m[0][1],
            self.m[0][2],
            self.m[1][0],
            self.m[1][1],
            self.m[1][2],
            self.m[2][0],
            self.m[2][1],
            self.m[2][2],
        ]
    }

    /// Rebuilds a matrix from the flat `(M11..M33)` parameter list.
    pub fn from_flat(v: [f64; 9]) -> Self {
        Matrix3::new([[v[0], v[1], v[2]], [v[3], v[4], v[5]], [v[6], v[7], v[8]]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: (f64, f64), b: (f64, f64)) -> bool {
        (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9
    }

    #[test]
    fn identity_is_noop() {
        assert!(close(Matrix3::IDENTITY.apply(3.5, -2.0), (3.5, -2.0)));
        assert!(Matrix3::IDENTITY.is_area_preserving());
        assert!(Matrix3::IDENTITY.is_axis_scale());
    }

    #[test]
    fn translation_moves() {
        let t = Matrix3::translation(5.0, -3.0);
        assert!(close(t.apply(1.0, 1.0), (6.0, -2.0)));
        assert!(t.is_area_preserving());
    }

    #[test]
    fn scale_scales_and_dets() {
        let s = Matrix3::scale(2.0, 3.0);
        assert!(close(s.apply(4.0, 5.0), (8.0, 15.0)));
        assert_eq!(s.linear_det(), 6.0);
        assert!(s.is_axis_scale());
        assert!(!s.is_area_preserving());
    }

    #[test]
    fn rotation_about_center_fixes_center() {
        let r = Matrix3::rotation_about(std::f64::consts::FRAC_PI_2, 10.0, 10.0);
        assert!(close(r.apply(10.0, 10.0), (10.0, 10.0)));
        // 90° CCW about (10,10): (11,10) → (10,11) in math orientation.
        let p = r.apply(11.0, 10.0);
        assert!(
            (p.0 - 10.0).abs() < 1e-9 && (p.1 - 11.0).abs() < 1e-9,
            "{p:?}"
        );
        assert!(r.is_area_preserving());
        assert!(!r.is_axis_scale());
    }

    #[test]
    fn compose_order() {
        // compose(T, S) applies S first.
        let t = Matrix3::translation(1.0, 0.0);
        let s = Matrix3::scale(2.0, 2.0);
        let ts = t.compose(&s);
        assert!(close(ts.apply(1.0, 1.0), (3.0, 2.0)));
        let st = s.compose(&t);
        assert!(close(st.apply(1.0, 1.0), (4.0, 2.0)));
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Matrix3::rotation_about(0.7, 3.0, 4.0).compose(&Matrix3::scale(1.5, 0.5));
        let inv = m.affine_inverse().unwrap();
        let p = m.apply(7.0, -2.0);
        assert!(close(inv.apply(p.0, p.1), (7.0, -2.0)));
    }

    #[test]
    fn singular_has_no_inverse() {
        assert!(Matrix3::scale(0.0, 1.0).affine_inverse().is_none());
        // Non-affine (projective) matrices are rejected too.
        let mut proj = Matrix3::IDENTITY;
        proj.m[2] = [0.1, 0.0, 1.0];
        assert!(proj.affine_inverse().is_none());
    }

    #[test]
    fn flat_roundtrip() {
        let m = Matrix3::rotation_about(1.1, 2.0, 3.0);
        assert_eq!(Matrix3::from_flat(m.flatten()), m);
    }

    #[test]
    fn shear_of_unit_det_counts_as_area_preserving() {
        let shear = Matrix3::new([[1.0, 0.5, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(shear.is_area_preserving());
        assert!(!shear.is_axis_scale());
    }
}

#![warn(missing_docs)]

//! # mmdb-editops
//!
//! The editing-operation storage model of the paper: an *edited image* is not
//! stored as pixels but as a reference to a base image plus a sequence of
//! editing operations (§2–3). This crate implements:
//!
//! * the complete five-operation set of Brown, Gruenwald & Speegle
//!   (`Define`, `Combine`, `Modify`, `Mutate`, `Merge`) — chosen by the paper
//!   because "its operations can be combined to perform any image
//!   transformation by manipulating a single pixel at a time",
//! * [`EditSequence`] — the stored form (`base` reference + op list),
//! * the **instantiation engine** ([`exec`]) that reconstructs the raster by
//!   "accessing the referenced base image and sequentially executing the
//!   associated editing operations",
//! * compact binary and human-readable text codecs for persisting sequences.
//!
//! ## Semantics the paper leaves open (documented choices)
//!
//! * **Sub-region `Mutate` uses copy ("stamp") semantics**: the defined
//!   region's pixels are written at their transformed positions while
//!   non-overwritten source pixels stay put. Under these semantics Table 1's
//!   rigid-body rule (min −|DR| / max +|DR| / total unchanged) is *exact*
//!   worst-case sound, which vacate-and-fill semantics would violate.
//! * **Whole-image `Mutate`** accepts axis-aligned scale(+translation)
//!   matrices and resizes the canvas by `M11 × M22`, matching Table 1's
//!   "DR contains image" rule; other whole-image matrices fall back to the
//!   rigid-body path.
//! * **`Merge` with a target** grows the canvas to the union of the target
//!   and the pasted region (Table 1's total-pixels formula); gap pixels are
//!   filled with the configurable background color.

pub mod codec;
pub mod exec;
pub mod ids;
pub mod matrix;
pub mod ops;
pub mod sequence;

pub use exec::{ExecOptions, ImageResolver, InstantiationEngine, MapResolver};
pub use ids::ImageId;
pub use matrix::Matrix3;
pub use ops::{EditOp, OpKind};
pub use sequence::{EditSequence, SequenceBuilder};

use std::fmt;

/// Errors from instantiation or (de)serialization of edit sequences.
#[derive(Debug)]
pub enum EditError {
    /// A referenced image (base or merge target) could not be resolved.
    UnknownImage(ImageId),
    /// An operation was structurally invalid for the current state
    /// (e.g. `Merge` with an empty defined region).
    InvalidOperation(String),
    /// The binary or text codec met malformed input.
    Codec(String),
    /// Error bubbled up from the imaging substrate.
    Imaging(mmdb_imaging::ImagingError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownImage(id) => write!(f, "unknown image {id}"),
            EditError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            EditError::Codec(msg) => write!(f, "edit-sequence codec error: {msg}"),
            EditError::Imaging(err) => write!(f, "imaging error: {err}"),
        }
    }
}

impl std::error::Error for EditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EditError::Imaging(err) => Some(err),
            _ => None,
        }
    }
}

impl From<mmdb_imaging::ImagingError> for EditError {
    fn from(err: mmdb_imaging::ImagingError) -> Self {
        EditError::Imaging(err)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EditError>;

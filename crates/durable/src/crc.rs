//! CRC-32 (IEEE 802.3 polynomial, reflected), implemented from scratch so
//! the crate stays free of external dependencies. Slice-by-8: recovery
//! checksums every WAL frame, snapshot, and persisted index segment before
//! trusting it, so startup latency is bounded by CRC throughput — the
//! eight-table form processes 8 bytes per step (~4× the classic
//! byte-at-a-time table walk) at the cost of 8 KiB of tables built once.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables, built at first use. `t[0]` is the
/// classic byte-at-a-time table; `t[k]` advances a byte `k` positions
/// further through the shift register.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 8]>> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for i in 0..256usize {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[0][i] = crc;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// CRC-32 of `data` — the same value `cksum`-style IEEE implementations
/// (zlib's `crc32`, PNG, gzip) produce.
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = b"the catalog is a sequence of editing operations".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}

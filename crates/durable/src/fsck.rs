//! Offline data-directory checker — the durable layer's analogue of the
//! sequence analyzer: stable `F` codes, a severity per finding, nonzero
//! exit decided by the caller on any `Error`.
//!
//! [`fsck`] validates what this crate owns: the meta header, every
//! snapshot's checksum, every WAL segment's header, frame CRCs, and
//! cross-segment sequence-number continuity. Storage-level checks that
//! need the catalog codec (payload decodes, blob generation file exists,
//! boundidx segments parse) are layered on by `mmdbctl fsck`, which pushes
//! its findings into the same report.

use std::fmt;
use std::fs;
use std::path::Path;

use crate::frame::scan_frames;
use crate::meta::read_meta;
use crate::snapshot::{decode as decode_snapshot, SnapshotInfo, SnapshotStore};
use crate::wal::{decode_header, list_segments, SEGMENT_HEADER_BYTES};

/// How serious a finding is. `Error` means recovery would fail or lose
/// acknowledged data; `Warn` means recovery degrades (e.g. falls back to an
/// older snapshot); `Note` is expected crash residue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The directory cannot be opened, or opens with data loss.
    Error,
    /// Recovery succeeds but something on disk is damaged or wasted.
    Warn,
    /// Expected residue (torn tail after a crash); informational.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Note => "note",
        })
    }
}

/// Every check fsck can raise. The numeric code (`F001`…) is part of the
/// stable interface, like the analyzer's `E`/`W`/`N` codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FsckCode {
    /// `F001` — meta file missing, unreadable, or bad magic/CRC.
    MetaInvalid,
    /// `F002` — format version outside this build's readable range.
    UnsupportedVersion,
    /// `F003` — a snapshot file fails checksum or header validation
    /// (recovery skips it and falls back to an older one).
    SnapshotCorrupt,
    /// `F004` — no loadable snapshot exists at all.
    NoValidSnapshot,
    /// `F005` — a WAL segment has a bad header or disagrees with its file
    /// name.
    SegmentHeaderInvalid,
    /// `F006` — a CRC-invalid frame *before* the log tail: records after it
    /// are unreachable, so acknowledged data would be lost.
    FrameCorrupt,
    /// `F007` — torn final record in the active segment; recovery truncates
    /// it (expected after a crash mid-append).
    TornTail,
    /// `F008` — sequence numbers are not contiguous across segments.
    SequenceGap,
    /// `F009` — a persisted boundidx segment fails validation (recovery
    /// ignores it and rebuilds; pushed by the storage-aware caller).
    IndexSegmentCorrupt,
    /// `F010` — the blob generation file the latest snapshot references is
    /// missing (pushed by the storage-aware caller).
    BlobGenerationMissing,
    /// `F011` — the latest snapshot's payload does not decode as a catalog
    /// (pushed by the storage-aware caller).
    SnapshotUndecodable,
}

impl FsckCode {
    /// Every code, in code order.
    pub const ALL: [FsckCode; 11] = [
        FsckCode::MetaInvalid,
        FsckCode::UnsupportedVersion,
        FsckCode::SnapshotCorrupt,
        FsckCode::NoValidSnapshot,
        FsckCode::SegmentHeaderInvalid,
        FsckCode::FrameCorrupt,
        FsckCode::TornTail,
        FsckCode::SequenceGap,
        FsckCode::IndexSegmentCorrupt,
        FsckCode::BlobGenerationMissing,
        FsckCode::SnapshotUndecodable,
    ];

    /// Stable textual code.
    pub fn code(self) -> &'static str {
        match self {
            FsckCode::MetaInvalid => "F001",
            FsckCode::UnsupportedVersion => "F002",
            FsckCode::SnapshotCorrupt => "F003",
            FsckCode::NoValidSnapshot => "F004",
            FsckCode::SegmentHeaderInvalid => "F005",
            FsckCode::FrameCorrupt => "F006",
            FsckCode::TornTail => "F007",
            FsckCode::SequenceGap => "F008",
            FsckCode::IndexSegmentCorrupt => "F009",
            FsckCode::BlobGenerationMissing => "F010",
            FsckCode::SnapshotUndecodable => "F011",
        }
    }

    /// Fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            FsckCode::MetaInvalid
            | FsckCode::UnsupportedVersion
            | FsckCode::NoValidSnapshot
            | FsckCode::FrameCorrupt
            | FsckCode::SequenceGap
            | FsckCode::SegmentHeaderInvalid
            | FsckCode::BlobGenerationMissing
            | FsckCode::SnapshotUndecodable => Severity::Error,
            FsckCode::SnapshotCorrupt | FsckCode::IndexSegmentCorrupt => Severity::Warn,
            FsckCode::TornTail => Severity::Note,
        }
    }

    /// One-line summary of what the code means.
    pub fn summary(self) -> &'static str {
        match self {
            FsckCode::MetaInvalid => "meta header missing or invalid",
            FsckCode::UnsupportedVersion => "on-disk format version unsupported",
            FsckCode::SnapshotCorrupt => "snapshot fails validation; recovery falls back",
            FsckCode::NoValidSnapshot => "no loadable snapshot",
            FsckCode::SegmentHeaderInvalid => "WAL segment header invalid",
            FsckCode::FrameCorrupt => "CRC-invalid frame before the log tail",
            FsckCode::TornTail => "torn final record (crash residue)",
            FsckCode::SequenceGap => "sequence numbers not contiguous across segments",
            FsckCode::IndexSegmentCorrupt => "persisted boundidx segment invalid",
            FsckCode::BlobGenerationMissing => "blob generation file missing",
            FsckCode::SnapshotUndecodable => "snapshot payload does not decode as a catalog",
        }
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which check fired.
    pub code: FsckCode,
    /// File/offset specifics.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code.severity(),
            self.code.code(),
            self.code.summary(),
            self.detail
        )
    }
}

/// Everything fsck learned about a data directory.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Header of the newest loadable snapshot, when one exists.
    pub latest_snapshot: Option<SnapshotInfo>,
    /// WAL segment files seen.
    pub segments: u64,
    /// Valid records across all segments.
    pub wal_records: u64,
    /// Records beyond the newest loadable snapshot — what recovery would
    /// replay (0 after a clean shutdown).
    pub tail_records: u64,
}

impl FsckReport {
    /// Adds a finding (also used by storage-aware callers for `F009`+).
    pub fn push(&mut self, code: FsckCode, detail: impl Into<String>) {
        self.findings.push(Finding {
            code,
            detail: detail.into(),
        });
    }

    /// True when any `Error`-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.code.severity() == Severity::Error)
    }
}

/// Checks the durable layer of `dir`: meta, snapshots, WAL.
pub fn fsck(dir: &Path) -> FsckReport {
    let mut report = FsckReport::default();

    match read_meta(dir) {
        Ok(Some(meta)) => {
            if let Err(e) = meta.check_readable() {
                report.push(FsckCode::UnsupportedVersion, e.to_string());
            }
        }
        Ok(None) => report.push(
            FsckCode::MetaInvalid,
            format!("{} has no meta file", dir.display()),
        ),
        Err(e) => report.push(FsckCode::MetaInvalid, e.to_string()),
    }

    // Snapshots: validate every file; remember the newest loadable one.
    let snap_dir = dir.join("snapshots");
    match SnapshotStore::open(&snap_dir).and_then(|s| s.list()) {
        Ok(files) => {
            let mut newest_ok: Option<SnapshotInfo> = None;
            for (path, _) in &files {
                match fs::read(path).map_err(Into::into).and_then(|b| {
                    decode_snapshot(&b).map(|(covered, blob_gen, payload)| SnapshotInfo {
                        covered_seqno: covered,
                        blob_gen,
                        payload_len: payload.len() as u64,
                        path: path.clone(),
                    })
                }) {
                    Ok(info) => newest_ok = Some(info),
                    Err(e) => report.push(
                        FsckCode::SnapshotCorrupt,
                        format!("{}: {e}", path.display()),
                    ),
                }
            }
            if newest_ok.is_none() {
                report.push(
                    FsckCode::NoValidSnapshot,
                    format!("{} holds no loadable snapshot", snap_dir.display()),
                );
            }
            report.latest_snapshot = newest_ok;
        }
        Err(e) => report.push(FsckCode::NoValidSnapshot, e.to_string()),
    }

    // WAL: headers, frames, continuity.
    let wal_dir = dir.join("wal");
    let segments = match list_segments(&wal_dir) {
        Ok(s) => s,
        Err(e) => {
            report.push(
                FsckCode::SegmentHeaderInvalid,
                format!("cannot list {}: {e}", wal_dir.display()),
            );
            Vec::new()
        }
    };
    report.segments = segments.len() as u64;
    let covered = report
        .latest_snapshot
        .as_ref()
        .map_or(0, |s| s.covered_seqno);
    for (i, (path, name_first)) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                report.push(
                    FsckCode::SegmentHeaderInvalid,
                    format!("{}: {e}", path.display()),
                );
                continue;
            }
        };
        let first = match decode_header(&bytes, Some(*name_first)) {
            Ok(f) => f,
            Err(e) => {
                report.push(
                    FsckCode::SegmentHeaderInvalid,
                    format!("{}: {e}", path.display()),
                );
                continue;
            }
        };
        let scan = scan_frames(&bytes[SEGMENT_HEADER_BYTES as usize..]);
        let count = scan.payload_ranges.len() as u64;
        report.wal_records += count;
        for idx in 0..count {
            if first + idx > covered {
                report.tail_records += 1;
            }
        }
        if let Some((dropped, reason)) = scan.tail {
            if is_last {
                report.push(
                    FsckCode::TornTail,
                    format!(
                        "{}: {dropped}B beyond last valid frame ({})",
                        path.display(),
                        reason.as_str()
                    ),
                );
            } else {
                report.push(
                    FsckCode::FrameCorrupt,
                    format!(
                        "{}: {} with {dropped}B after it in a sealed segment",
                        path.display(),
                        reason.as_str()
                    ),
                );
            }
        }
        if !is_last {
            let next_first = segments[i + 1].1;
            if first + count != next_first {
                report.push(
                    FsckCode::SequenceGap,
                    format!(
                        "{} ends at seqno {}, successor starts at {next_first}",
                        path.display(),
                        first + count.saturating_sub(1)
                    ),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{write_meta, Meta};
    use crate::policy::FsyncPolicy;
    use crate::snapshot::SnapshotStore;
    use crate::wal::{Wal, WalOptions};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("mmdb-fsck-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn healthy_dir(tag: &str) -> PathBuf {
        let dir = temp_dir(tag);
        write_meta(&dir, Meta::current()).unwrap();
        let store = SnapshotStore::open(&dir.join("snapshots")).unwrap();
        store.write(0, 0, b"catalog-bytes").unwrap();
        let opts = WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Never,
        };
        let (mut wal, _) = Wal::open(&dir.join("wal"), opts, 0).unwrap();
        wal.append(b"record-a").unwrap();
        wal.append(b"record-b").unwrap();
        wal.sync().unwrap();
        dir
    }

    #[test]
    fn healthy_directory_is_clean() {
        let dir = healthy_dir("clean");
        let report = fsck(&dir);
        assert!(!report.has_errors(), "{:?}", report.findings);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.tail_records, 2);
        assert_eq!(report.wal_records, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_meta_and_snapshot_are_errors() {
        let dir = temp_dir("empty");
        let report = fsck(&dir);
        assert!(report.has_errors());
        let codes: Vec<_> = report.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&FsckCode::MetaInvalid));
        assert!(codes.contains(&FsckCode::NoValidSnapshot));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_a_note_not_an_error() {
        let dir = healthy_dir("torn");
        let (path, _) = list_segments(&dir.join("wal")).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let report = fsck(&dir);
        assert!(!report.has_errors(), "{:?}", report.findings);
        assert!(report.findings.iter().any(|f| f.code == FsckCode::TornTail));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_without_fallback_is_error() {
        let dir = healthy_dir("snapbad");
        for (path, _) in SnapshotStore::open(&dir.join("snapshots"))
            .unwrap()
            .list()
            .unwrap()
        {
            fs::write(&path, b"junk").unwrap();
        }
        let report = fsck(&dir);
        assert!(report.has_errors());
        let codes: Vec<_> = report.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&FsckCode::SnapshotCorrupt));
        assert!(codes.contains(&FsckCode::NoValidSnapshot));
        fs::remove_dir_all(&dir).unwrap();
    }
}

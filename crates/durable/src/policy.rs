//! Group-commit fsync policy: when an acknowledged append is guaranteed to
//! be on stable storage.

use std::time::Duration;

/// When the WAL calls `fdatasync` on the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync before every append acknowledgment. Appends committed by other
    /// threads since the last sync ride along (group commit), so the cost
    /// amortizes under concurrency.
    Always,
    /// A maintenance thread syncs at this interval; an acknowledged append
    /// may be lost if the process dies inside the window.
    Interval(Duration),
    /// Never sync explicitly; the OS page cache decides. Crash durability
    /// is whatever the kernel flushed — for benchmarks and bulk loads.
    Never,
}

impl FsyncPolicy {
    /// Default interval used by `interval` when none is given.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(50);

    /// Parses the CLI spelling: `always`, `never`, `interval`, or
    /// `interval:<millis>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "interval" => Ok(FsyncPolicy::Interval(Self::DEFAULT_INTERVAL)),
            other => {
                if let Some(ms) = other.strip_prefix("interval:") {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("bad fsync interval {ms:?}"))?;
                    Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
                } else {
                    Err(format!(
                        "unknown fsync policy {other:?} (want always|interval[:ms]|never)"
                    ))
                }
            }
        }
    }

    /// Canonical spelling, inverse of [`FsyncPolicy::parse`].
    pub fn label(self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_owned(),
            FsyncPolicy::Never => "never".to_owned(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
        }
    }
}

impl Default for FsyncPolicy {
    /// `Always` — correctness first; callers opt into weaker guarantees.
    fn default() -> Self {
        FsyncPolicy::Always
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["always", "never", "interval:250"] {
            assert_eq!(FsyncPolicy::parse(s).unwrap().label(), s);
        }
        assert_eq!(
            FsyncPolicy::parse("interval").unwrap(),
            FsyncPolicy::Interval(FsyncPolicy::DEFAULT_INTERVAL)
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("interval:abc").is_err());
    }
}

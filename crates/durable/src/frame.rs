//! Length-prefixed, CRC-framed record encoding — the unit of WAL append.
//!
//! Wire shape of one frame:
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! The CRC covers the payload only; the length field is validated by the
//! sanity cap plus the CRC of the bytes it delimits (a corrupted length
//! either runs past EOF — torn — or frames the wrong bytes, which the CRC
//! rejects). Scanning stops at the first frame that fails to validate; the
//! caller decides whether the remainder is a tolerable torn tail (last
//! segment, crash mid-append) or corruption (any finished segment).

use crate::crc::crc32;

/// Bytes of framing overhead ahead of each payload.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Sanity cap on a single record. Edit-sequence records are a few hundred
/// bytes; binary-image records carry a raster and can reach megabytes. A
/// length above this is treated as frame damage, not an allocation request.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// Appends one encoded frame to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a scan stopped before consuming the whole buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailReason {
    /// Fewer than [`FRAME_HEADER_BYTES`] bytes remained.
    IncompleteHeader,
    /// The header promised more payload bytes than the buffer holds.
    IncompletePayload,
    /// A complete frame's checksum did not match its payload.
    CrcMismatch,
    /// The length field exceeded [`MAX_FRAME_PAYLOAD`].
    OversizedLength,
}

impl TailReason {
    /// Human-readable name for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            TailReason::IncompleteHeader => "incomplete header",
            TailReason::IncompletePayload => "incomplete payload",
            TailReason::CrcMismatch => "crc mismatch",
            TailReason::OversizedLength => "oversized length",
        }
    }
}

/// Result of scanning a buffer of concatenated frames.
#[derive(Debug)]
pub struct Scan {
    /// `(start, end)` byte ranges of each valid payload, in order.
    pub payload_ranges: Vec<(usize, usize)>,
    /// Offset just past the last valid frame — the truncation point that
    /// discards a torn tail.
    pub valid_len: usize,
    /// Set when trailing bytes failed to validate: how many were left and
    /// why the first invalid frame was rejected.
    pub tail: Option<(usize, TailReason)>,
}

/// Scans `buf` frame by frame, stopping at the first invalid frame.
pub fn scan_frames(buf: &[u8]) -> Scan {
    let mut payload_ranges = Vec::new();
    let mut pos = 0usize;
    let tail = loop {
        if pos == buf.len() {
            break None;
        }
        let remaining = buf.len() - pos;
        if remaining < FRAME_HEADER_BYTES {
            break Some((remaining, TailReason::IncompleteHeader));
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            break Some((remaining, TailReason::OversizedLength));
        }
        let body = pos + FRAME_HEADER_BYTES;
        let end = body + len as usize;
        if end > buf.len() {
            break Some((remaining, TailReason::IncompletePayload));
        }
        if crc32(&buf[body..end]) != crc {
            break Some((remaining, TailReason::CrcMismatch));
        }
        payload_ranges.push((body, end));
        pos = end;
    };
    Scan {
        payload_ranges,
        valid_len: pos,
        tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            encode_frame(p, &mut buf);
        }
        buf
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let buf = frames(&[b"alpha", b"", b"gamma-record"]);
        let scan = scan_frames(&buf);
        assert!(scan.tail.is_none());
        assert_eq!(scan.valid_len, buf.len());
        let got: Vec<&[u8]> = scan
            .payload_ranges
            .iter()
            .map(|&(s, e)| &buf[s..e])
            .collect();
        assert_eq!(got, vec![&b"alpha"[..], &b""[..], &b"gamma-record"[..]]);
    }

    #[test]
    fn torn_tail_at_every_truncation_point() {
        let buf = frames(&[b"first", b"second", b"third"]);
        let full = scan_frames(&buf);
        // Boundaries after each complete frame.
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            b.extend(full.payload_ranges.iter().map(|&(_, e)| e));
            b
        };
        for cut in 0..buf.len() {
            let scan = scan_frames(&buf[..cut]);
            // Valid prefix is the largest boundary <= cut.
            let want_frames = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.payload_ranges.len(), want_frames, "cut={cut}");
            assert_eq!(
                scan.valid_len,
                *boundaries.iter().filter(|&&b| b <= cut).max().unwrap_or(&0),
                "cut={cut}"
            );
            if boundaries.contains(&cut) {
                assert!(scan.tail.is_none(), "cut={cut} is a clean boundary");
            } else {
                assert!(scan.tail.is_some(), "cut={cut} must be torn");
            }
        }
    }

    #[test]
    fn corrupt_payload_stops_scan() {
        let mut buf = frames(&[b"first", b"second"]);
        // Flip a byte inside the first payload.
        buf[FRAME_HEADER_BYTES] ^= 0x40;
        let scan = scan_frames(&buf);
        assert_eq!(scan.payload_ranges.len(), 0);
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.tail.unwrap().1, TailReason::CrcMismatch);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let scan = scan_frames(&buf);
        assert_eq!(scan.tail.unwrap().1, TailReason::OversizedLength);
    }
}

//! The `meta` file: one small, immutable header identifying a directory as
//! an MMDB data dir and stamping its on-disk format version.
//!
//! Layout (20 bytes):
//!
//! ```text
//! magic "MMDBMET1" (8) | format_version u32 LE | min_reader_version u32 LE
//! | crc32 of the preceding 16 bytes (u32 LE)
//! ```
//!
//! `format_version` is the version this directory was written with;
//! `min_reader_version` is the oldest reader that can still open it. A
//! reader refuses a directory whose `min_reader_version` exceeds its own
//! [`crate::DURABLE_FORMAT_VERSION`]. The version number deliberately
//! tracks the wire protocol's major version (see DESIGN.md): a deployment
//! that can speak to a node can also read the files it left behind.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::wal::sync_dir;
use crate::{DURABLE_FORMAT_VERSION, MIN_DURABLE_FORMAT_VERSION};

/// Magic prefix of the meta file.
pub const META_MAGIC: &[u8; 8] = b"MMDBMET1";

/// File name inside the data dir.
pub const META_FILE: &str = "meta";

/// Decoded meta header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Format version the directory was written with.
    pub format_version: u32,
    /// Oldest reader version able to open the directory.
    pub min_reader_version: u32,
}

impl Meta {
    /// The header a freshly created data dir gets.
    pub fn current() -> Meta {
        Meta {
            format_version: DURABLE_FORMAT_VERSION,
            min_reader_version: MIN_DURABLE_FORMAT_VERSION,
        }
    }

    fn encode(self) -> [u8; 20] {
        let mut out = [0u8; 20];
        out[..8].copy_from_slice(META_MAGIC);
        out[8..12].copy_from_slice(&self.format_version.to_le_bytes());
        out[12..16].copy_from_slice(&self.min_reader_version.to_le_bytes());
        let crc = crc32(&out[..16]);
        out[16..20].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates meta bytes.
    pub fn decode(bytes: &[u8]) -> Result<Meta> {
        if bytes.len() != 20 {
            return Err(DurableError::Corrupt(format!(
                "meta file is {} bytes, want 20",
                bytes.len()
            )));
        }
        if &bytes[..8] != META_MAGIC {
            return Err(DurableError::Corrupt("bad meta magic".into()));
        }
        if crc32(&bytes[..16]) != u32::from_le_bytes(bytes[16..20].try_into().unwrap()) {
            return Err(DurableError::Corrupt("meta crc mismatch".into()));
        }
        Ok(Meta {
            format_version: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            min_reader_version: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        })
    }

    /// Refuses directories this build cannot read.
    pub fn check_readable(self) -> Result<()> {
        if self.min_reader_version > DURABLE_FORMAT_VERSION {
            return Err(DurableError::Unsupported(format!(
                "data dir needs reader v{} but this build reads up to v{DURABLE_FORMAT_VERSION}",
                self.min_reader_version
            )));
        }
        Ok(())
    }
}

/// Writes the meta file atomically (tmp + rename).
pub fn write_meta(dir: &Path, meta: Meta) -> Result<()> {
    let path = dir.join(META_FILE);
    let tmp = dir.join("meta.tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&meta.encode())?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    sync_dir(dir);
    Ok(())
}

/// Reads and validates the meta file. `Ok(None)` when absent.
pub fn read_meta(dir: &Path) -> Result<Option<Meta>> {
    let path = dir.join(META_FILE);
    match fs::read(&path) {
        Ok(bytes) => Ok(Some(Meta::decode(&bytes)?)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_tamper() {
        let meta = Meta::current();
        let bytes = meta.encode();
        assert_eq!(Meta::decode(&bytes).unwrap(), meta);
        let mut bad = bytes;
        bad[9] ^= 1;
        assert!(Meta::decode(&bad).is_err());
    }

    #[test]
    fn future_directory_refused() {
        let meta = Meta {
            format_version: DURABLE_FORMAT_VERSION + 7,
            min_reader_version: DURABLE_FORMAT_VERSION + 7,
        };
        assert!(Meta::decode(&meta.encode())
            .unwrap()
            .check_readable()
            .is_err());
        assert!(Meta::current().check_readable().is_ok());
    }
}

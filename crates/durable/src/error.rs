//! Error type shared by the WAL, snapshot store, and recovery path.

use std::fmt;
use std::io;

/// Everything that can go wrong opening, appending to, or recovering a
/// durable data directory.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// On-disk bytes failed validation (bad magic, CRC mismatch in a
    /// finished segment, no loadable snapshot, broken continuity).
    Corrupt(String),
    /// The on-disk format version is outside the supported range.
    Unsupported(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::Corrupt(msg) => write!(f, "corrupt data directory: {msg}"),
            DurableError::Unsupported(msg) => write!(f, "unsupported format: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DurableError>;

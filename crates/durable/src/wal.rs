//! Append-only segmented write-ahead log.
//!
//! The log is a directory of segment files named `wal-<first_seqno>.seg`
//! (sixteen lowercase hex digits). Each segment starts with a fixed header
//! — magic, format version, first sequence number — followed by CRC-framed
//! records ([`crate::frame`]). Sequence numbers are assigned densely: the
//! `i`-th frame of a segment holds record `first_seqno + i`, so a segment's
//! name plus its successor's name delimits exactly which records it holds
//! without scanning it. The active (last) segment is the only one ever
//! written; when it crosses the size threshold it is sealed and a new one
//! begins.
//!
//! Torn tails: a crash can leave a partial frame at the end of the active
//! segment. `Wal::open` scans the last segment to the last valid frame and
//! truncates the remainder, so "only the final record may be torn" holds as
//! an invariant everywhere else (a torn frame in a *sealed* segment is real
//! corruption and fails recovery).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use mmdb_telemetry::{counter, gauge, histogram, EventKind};

use crate::error::{DurableError, Result};
use crate::frame::{encode_frame, scan_frames, FRAME_HEADER_BYTES};
use crate::policy::FsyncPolicy;
use crate::{DURABLE_FORMAT_VERSION, MIN_DURABLE_FORMAT_VERSION};

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"MMDBWAL1";

/// Bytes of segment header ahead of the first frame.
pub const SEGMENT_HEADER_BYTES: u64 = 20;

/// Tuning knobs for the log.
#[derive(Clone, Copy, Debug)]
pub struct WalOptions {
    /// Seal the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Group-commit policy for append acknowledgment.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::default(),
        }
    }
}

/// A sealed (read-only) segment.
#[derive(Clone, Debug)]
struct SealedSegment {
    path: PathBuf,
    first_seqno: u64,
}

/// What `Wal::open` found and repaired.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalOpenStats {
    /// Bytes of torn tail truncated from the active segment.
    pub torn_bytes: u64,
    /// Highest sequence number present after repair (0 when empty).
    pub last_seqno: u64,
}

/// The segmented write-ahead log.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    sealed: Vec<SealedSegment>,
    active: File,
    active_first: u64,
    active_bytes: u64,
    next_seqno: u64,
    dirty: bool,
}

fn segment_path(dir: &Path, first_seqno: u64) -> PathBuf {
    dir.join(format!("wal-{first_seqno:016x}.seg"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode_header(first_seqno: u64) -> [u8; SEGMENT_HEADER_BYTES as usize] {
    let mut h = [0u8; SEGMENT_HEADER_BYTES as usize];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&DURABLE_FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&first_seqno.to_le_bytes());
    h
}

/// Validates a segment header against the file name it was read from.
/// Returns the embedded first sequence number.
pub fn decode_header(bytes: &[u8], expect_first: Option<u64>) -> Result<u64> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(DurableError::Corrupt("segment shorter than header".into()));
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err(DurableError::Corrupt("bad segment magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !(MIN_DURABLE_FORMAT_VERSION..=DURABLE_FORMAT_VERSION).contains(&version) {
        return Err(DurableError::Unsupported(format!(
            "segment format v{version}, supported v{MIN_DURABLE_FORMAT_VERSION}..=v{DURABLE_FORMAT_VERSION}"
        )));
    }
    let first = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    if let Some(want) = expect_first {
        if first != want {
            return Err(DurableError::Corrupt(format!(
                "segment header first_seqno {first} disagrees with file name {want}"
            )));
        }
    }
    Ok(first)
}

/// Lists the segment files of `dir`, ascending by first sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(PathBuf, u64)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(first) = parse_segment_name(name) {
            found.push((entry.path(), first));
        }
    }
    found.sort_by_key(|&(_, first)| first);
    Ok(found)
}

impl Wal {
    /// Opens (or initializes) the log in `dir`. When the directory holds no
    /// segments, the first segment starts at `base_seqno + 1` — the caller
    /// passes the sequence number its latest snapshot covers, so a log
    /// fully garbage-collected after a snapshot resumes without a gap.
    pub fn open(dir: &Path, opts: WalOptions, base_seqno: u64) -> Result<(Wal, WalOpenStats)> {
        fs::create_dir_all(dir)?;
        let mut segs = list_segments(dir)?;

        let mut stats = WalOpenStats::default();
        if segs.is_empty() {
            let first = base_seqno + 1;
            let path = segment_path(dir, first);
            let mut f = OpenOptions::new()
                .create_new(true)
                .read(true)
                .append(true)
                .open(&path)?;
            f.write_all(&encode_header(first))?;
            f.sync_data()?;
            sync_dir(dir);
            stats.last_seqno = base_seqno;
            let wal = Wal {
                dir: dir.to_path_buf(),
                opts,
                sealed: Vec::new(),
                active: f,
                active_first: first,
                active_bytes: SEGMENT_HEADER_BYTES,
                next_seqno: first,
                dirty: false,
            };
            wal.publish_gauges();
            return Ok((wal, stats));
        }

        for window in segs.windows(2) {
            if window[0].1 >= window[1].1 {
                return Err(DurableError::Corrupt(format!(
                    "segment order broken: {} then {}",
                    window[0].1, window[1].1
                )));
            }
        }

        // Validate sealed headers cheaply (header only), scan just the last
        // segment to find the append point and repair any torn tail.
        let (last_path, last_first) = segs.pop().expect("nonempty");
        let mut sealed = Vec::with_capacity(segs.len());
        for (path, first) in segs {
            let mut head = [0u8; SEGMENT_HEADER_BYTES as usize];
            File::open(&path)?.read_exact(&mut head).map_err(|_| {
                DurableError::Corrupt(format!("sealed segment {} truncated", path.display()))
            })?;
            decode_header(&head, Some(first))?;
            sealed.push(SealedSegment {
                path,
                first_seqno: first,
            });
        }

        let bytes = fs::read(&last_path)?;
        decode_header(&bytes, Some(last_first))?;
        let scan = scan_frames(&bytes[SEGMENT_HEADER_BYTES as usize..]);
        let valid_bytes = SEGMENT_HEADER_BYTES + scan.valid_len as u64;
        if let Some((dropped, reason)) = scan.tail {
            stats.torn_bytes = dropped as u64;
            counter!("mmdb_recovery_torn_bytes_total").add(dropped as u64);
            let f = OpenOptions::new().write(true).open(&last_path)?;
            f.set_len(valid_bytes)?;
            f.sync_data()?;
            mmdb_telemetry::recorder().record(
                EventKind::Recovery,
                format!(
                    "torn tail truncated: segment={} dropped={dropped}B reason={}",
                    last_path.display(),
                    reason.as_str()
                ),
                &[("torn_bytes", dropped as u64)],
            );
        }
        let next_seqno = last_first + scan.payload_ranges.len() as u64;
        stats.last_seqno = next_seqno - 1;

        let active = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&last_path)?;
        let wal = Wal {
            dir: dir.to_path_buf(),
            opts,
            sealed,
            active,
            active_first: last_first,
            active_bytes: valid_bytes,
            next_seqno,
            dirty: false,
        };
        wal.publish_gauges();
        Ok((wal, stats))
    }

    /// Sequence number the next append will receive.
    pub fn next_seqno(&self) -> u64 {
        self.next_seqno
    }

    /// Highest acknowledged sequence number (0 when the log is empty).
    pub fn last_seqno(&self) -> u64 {
        self.next_seqno - 1
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Bytes in the active segment, header included.
    pub fn active_bytes(&self) -> u64 {
        self.active_bytes
    }

    /// Appends one record, returning its sequence number. Under
    /// [`FsyncPolicy::Always`] the record is on stable storage when this
    /// returns; otherwise durability follows the policy.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if self.active_bytes >= self.opts.segment_bytes {
            self.rotate()?;
        }
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        encode_frame(payload, &mut buf);
        self.active.write_all(&buf)?;
        self.active_bytes += buf.len() as u64;
        self.dirty = true;
        let seqno = self.next_seqno;
        self.next_seqno += 1;
        counter!("mmdb_wal_appends_total").inc();
        counter!("mmdb_wal_appended_bytes_total").add(buf.len() as u64);
        gauge!("mmdb_wal_active_segment_bytes").set(self.active_bytes);
        if self.opts.fsync == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(seqno)
    }

    /// Forces the active segment to stable storage (no-op when clean).
    pub fn sync(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let start = Instant::now();
        self.active.sync_data()?;
        self.dirty = false;
        histogram!("mmdb_wal_fsync_seconds").observe(start.elapsed());
        Ok(())
    }

    /// Seals the active segment and starts a new one. A segment holding no
    /// frames is left in place (nothing to seal).
    pub fn rotate(&mut self) -> Result<()> {
        if self.active_bytes == SEGMENT_HEADER_BYTES {
            return Ok(());
        }
        self.active.sync_data()?;
        self.dirty = false;
        let first = self.next_seqno;
        let path = segment_path(&self.dir, first);
        let mut f = OpenOptions::new()
            .create_new(true)
            .read(true)
            .append(true)
            .open(&path)?;
        f.write_all(&encode_header(first))?;
        f.sync_data()?;
        sync_dir(&self.dir);
        let old_path = segment_path(&self.dir, self.active_first);
        self.sealed.push(SealedSegment {
            path: old_path.clone(),
            first_seqno: self.active_first,
        });
        self.active = f;
        self.active_first = first;
        self.active_bytes = SEGMENT_HEADER_BYTES;
        counter!("mmdb_wal_rotations_total").inc();
        mmdb_telemetry::recorder().record(
            EventKind::WalRotation,
            format!("sealed={} new_first_seqno={first}", old_path.display()),
            &[("segments", self.segment_count() as u64)],
        );
        self.publish_gauges();
        Ok(())
    }

    /// Replays every record with sequence number greater than `from`,
    /// in order. The callback receives `(seqno, payload)`.
    pub fn replay(
        &mut self,
        from: u64,
        mut f: impl FnMut(u64, &[u8]) -> Result<()>,
    ) -> Result<u64> {
        let mut replayed = 0u64;
        let segments: Vec<(PathBuf, u64, bool)> = self
            .sealed
            .iter()
            .map(|s| (s.path.clone(), s.first_seqno, true))
            .chain(std::iter::once((
                segment_path(&self.dir, self.active_first),
                self.active_first,
                false,
            )))
            .collect();
        for (i, (path, first, is_sealed)) in segments.iter().enumerate() {
            // Skip segments that end before `from`: a segment's records are
            // bounded by its successor's first seqno.
            if let Some((_, next_first, _)) = segments.get(i + 1) {
                if *next_first <= from + 1 {
                    continue;
                }
            }
            let bytes = fs::read(path)?;
            decode_header(&bytes, Some(*first))?;
            let scan = scan_frames(&bytes[SEGMENT_HEADER_BYTES as usize..]);
            if let Some((dropped, reason)) = scan.tail {
                // `open` repaired the active tail; anything left is real.
                return Err(DurableError::Corrupt(format!(
                    "{} segment {}: {} ({dropped}B unaccounted)",
                    if *is_sealed { "sealed" } else { "active" },
                    path.display(),
                    reason.as_str()
                )));
            }
            if *is_sealed {
                if let Some((_, next_first, _)) = segments.get(i + 1) {
                    let last = first + scan.payload_ranges.len() as u64 - 1;
                    if last + 1 != *next_first {
                        return Err(DurableError::Corrupt(format!(
                            "seqno gap: {} ends at {last}, successor starts at {next_first}",
                            path.display()
                        )));
                    }
                }
            }
            let body = &bytes[SEGMENT_HEADER_BYTES as usize..];
            for (idx, &(s, e)) in scan.payload_ranges.iter().enumerate() {
                let seqno = first + idx as u64;
                if seqno <= from {
                    continue;
                }
                f(seqno, &body[s..e])?;
                replayed += 1;
            }
        }
        counter!("mmdb_recovery_replayed_records_total").add(replayed);
        Ok(replayed)
    }

    /// Deletes sealed segments whose every record is covered by a snapshot
    /// at `covered_seqno`. Returns how many files were removed.
    pub fn gc(&mut self, covered_seqno: u64) -> Result<usize> {
        let mut removed = 0usize;
        while !self.sealed.is_empty() {
            let successor_first = self
                .sealed
                .get(1)
                .map_or(self.active_first, |s| s.first_seqno);
            // Records of sealed[0] run up to successor_first - 1.
            if successor_first - 1 > covered_seqno {
                break;
            }
            let seg = self.sealed.remove(0);
            fs::remove_file(&seg.path)?;
            removed += 1;
        }
        if removed > 0 {
            counter!("mmdb_wal_gc_segments_total").add(removed as u64);
            self.publish_gauges();
        }
        Ok(removed)
    }

    /// Refreshes the segment-count and active-segment-bytes gauges.
    pub fn publish_gauges(&self) {
        gauge!("mmdb_wal_segments").set(self.segment_count() as u64);
        gauge!("mmdb_wal_active_segment_bytes").set(self.active_bytes);
    }
}

/// Best-effort directory fsync so renames/creates survive power loss.
/// Failure is ignored: some filesystems refuse to sync directories and the
/// data-file syncs still bound the damage to one torn record.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("mmdb-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn collect(wal: &mut Wal, from: u64) -> Vec<(u64, Vec<u8>)> {
        let mut got = Vec::new();
        wal.replay(from, |seq, payload| {
            got.push((seq, payload.to_vec()));
            Ok(())
        })
        .unwrap();
        got
    }

    #[test]
    fn append_reopen_replay() {
        let dir = temp_dir("basic");
        let opts = WalOptions::default();
        {
            let (mut wal, stats) = Wal::open(&dir, opts, 0).unwrap();
            assert_eq!(stats.last_seqno, 0);
            assert_eq!(wal.append(b"one").unwrap(), 1);
            assert_eq!(wal.append(b"two").unwrap(), 2);
            assert_eq!(wal.append(b"three").unwrap(), 3);
        }
        let (mut wal, stats) = Wal::open(&dir, opts, 0).unwrap();
        assert_eq!(stats.last_seqno, 3);
        assert_eq!(stats.torn_bytes, 0);
        let got = collect(&mut wal, 1);
        assert_eq!(got, vec![(2, b"two".to_vec()), (3, b"three".to_vec())]);
        assert_eq!(wal.append(b"four").unwrap(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_gc() {
        let dir = temp_dir("rotate");
        let opts = WalOptions {
            segment_bytes: SEGMENT_HEADER_BYTES + 40,
            fsync: FsyncPolicy::Never,
        };
        let (mut wal, _) = Wal::open(&dir, opts, 0).unwrap();
        for i in 0..12u64 {
            wal.append(format!("record-{i:04}").as_bytes()).unwrap();
        }
        assert!(wal.segment_count() > 2, "expected rotations");
        let all = collect(&mut wal, 0);
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].0, 1);
        assert_eq!(all[11].0, 12);

        // GC everything covered by a snapshot at seqno 7: sealed segments
        // fully below stay, the rest (incl. active) survive.
        let before = wal.segment_count();
        let removed = wal.gc(7).unwrap();
        assert!(removed > 0, "expected at least one segment removed");
        assert_eq!(wal.segment_count(), before - removed);
        let tail = collect(&mut wal, 7);
        assert_eq!(tail.len(), 5, "records 8..=12 must survive GC");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let dir = temp_dir("torn");
        let opts = WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Never,
        };
        {
            let (mut wal, _) = Wal::open(&dir, opts, 0).unwrap();
            wal.append(b"kept-record").unwrap();
            wal.append(b"doomed-record").unwrap();
            wal.sync().unwrap();
        }
        // Tear the last record mid-payload.
        let (path, _) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let (mut wal, stats) = Wal::open(&dir, opts, 0).unwrap();
        assert!(stats.torn_bytes > 0);
        assert_eq!(stats.last_seqno, 1);
        let got = collect(&mut wal, 0);
        assert_eq!(got, vec![(1, b"kept-record".to_vec())]);
        // The log keeps accepting appends after repair, reusing seqno 2.
        assert_eq!(wal.append(b"replacement").unwrap(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_log_resumes_from_snapshot_base() {
        let dir = temp_dir("base");
        let (mut wal, stats) = Wal::open(&dir, WalOptions::default(), 41).unwrap();
        assert_eq!(stats.last_seqno, 41);
        assert_eq!(wal.append(b"after-snapshot").unwrap(), 42);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_sealed_segment_fails_replay() {
        let dir = temp_dir("sealedbad");
        let opts = WalOptions {
            segment_bytes: SEGMENT_HEADER_BYTES + 30,
            fsync: FsyncPolicy::Never,
        };
        {
            let (mut wal, _) = Wal::open(&dir, opts, 0).unwrap();
            for i in 0..8u64 {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip a payload byte in the first (sealed) segment.
        let (path, _) = list_segments(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&path).unwrap();
        let idx = SEGMENT_HEADER_BYTES as usize + FRAME_HEADER_BYTES + 1;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let (mut wal, _) = Wal::open(&dir, opts, 0).unwrap();
        let err = wal.replay(0, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Point-in-time snapshots with atomic rename-into-place.
//!
//! A snapshot file `snap-<covered_seqno>.snap` holds an opaque payload (the
//! encoded catalog) plus a header recording which WAL sequence number it
//! covers and which blob-file generation it references. Writes go to a
//! temporary file, are synced, then renamed into place — a crash can only
//! ever leave a stale-but-complete previous snapshot plus a harmless tmp
//! file. Loading walks snapshots newest-first and returns the first one
//! whose checksum validates, so a torn or bit-rotted latest snapshot
//! degrades to the previous one (whose WAL tail still exists: segment GC is
//! bounded by the *oldest retained* snapshot, not the newest).

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use mmdb_telemetry::{counter, gauge, histogram, EventKind};

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::wal::sync_dir;
use crate::{DURABLE_FORMAT_VERSION, MIN_DURABLE_FORMAT_VERSION};

/// Magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MMDBSNP1";

/// Fixed header size ahead of the payload.
pub const SNAPSHOT_HEADER_BYTES: usize = 40;

/// How many most-recent snapshots `prune` retains (the newest for normal
/// recovery, one fallback in case the newest is damaged).
pub const SNAPSHOTS_RETAINED: usize = 2;

/// A decoded snapshot.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Every WAL record with seqno <= this is folded into the payload.
    pub covered_seqno: u64,
    /// Blob-file generation the payload's blob references point into.
    pub blob_gen: u64,
    /// The opaque payload (encoded catalog).
    pub payload: Vec<u8>,
    /// File it was loaded from.
    pub path: PathBuf,
}

/// Header fields without the payload — what fsck reports.
#[derive(Clone, Debug)]
pub struct SnapshotInfo {
    pub covered_seqno: u64,
    pub blob_gen: u64,
    pub payload_len: u64,
    pub path: PathBuf,
}

/// The snapshots directory of one data dir.
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snapshot_path(dir: &Path, covered_seqno: u64) -> PathBuf {
    dir.join(format!("snap-{covered_seqno:016x}.snap"))
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode(covered_seqno: u64, blob_gen: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&DURABLE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&covered_seqno.to_le_bytes());
    out.extend_from_slice(&blob_gen.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates one snapshot file's bytes; returns `(covered, blob_gen,
/// payload)`.
pub fn decode(bytes: &[u8]) -> Result<(u64, u64, &[u8])> {
    if bytes.len() < SNAPSHOT_HEADER_BYTES {
        return Err(DurableError::Corrupt("snapshot shorter than header".into()));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(DurableError::Corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !(MIN_DURABLE_FORMAT_VERSION..=DURABLE_FORMAT_VERSION).contains(&version) {
        return Err(DurableError::Unsupported(format!(
            "snapshot format v{version}, supported v{MIN_DURABLE_FORMAT_VERSION}..=v{DURABLE_FORMAT_VERSION}"
        )));
    }
    let covered = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let blob_gen = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[36..40].try_into().unwrap());
    let payload = &bytes[SNAPSHOT_HEADER_BYTES..];
    if payload.len() != payload_len {
        return Err(DurableError::Corrupt(format!(
            "snapshot payload {} bytes, header promised {payload_len}",
            payload.len()
        )));
    }
    if crc32(payload) != crc {
        return Err(DurableError::Corrupt(
            "snapshot payload crc mismatch".into(),
        ));
    }
    Ok((covered, blob_gen, payload))
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshots directory.
    pub fn open(dir: &Path) -> Result<SnapshotStore> {
        fs::create_dir_all(dir)?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    /// Lists snapshot files, ascending by covered seqno.
    pub fn list(&self) -> Result<Vec<(PathBuf, u64)>> {
        let mut found = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(covered) = parse_snapshot_name(name) {
                found.push((entry.path(), covered));
            }
        }
        found.sort_by_key(|&(_, covered)| covered);
        Ok(found)
    }

    /// Writes a snapshot covering `covered_seqno` atomically and prunes old
    /// ones down to [`SNAPSHOTS_RETAINED`].
    pub fn write(&self, covered_seqno: u64, blob_gen: u64, payload: &[u8]) -> Result<PathBuf> {
        let start = Instant::now();
        let bytes = encode(covered_seqno, blob_gen, payload);
        let final_path = snapshot_path(&self.dir, covered_seqno);
        let tmp = final_path.with_extension("snap.tmp");
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        sync_dir(&self.dir);
        self.prune(SNAPSHOTS_RETAINED)?;
        let elapsed = start.elapsed();
        histogram!("mmdb_snapshot_seconds").observe(elapsed);
        counter!("mmdb_snapshots_total").inc();
        counter!("mmdb_snapshot_bytes_total").add(bytes.len() as u64);
        gauge!("mmdb_snapshot_last_seqno").set(covered_seqno);
        mmdb_telemetry::recorder().record(
            EventKind::Snapshot,
            format!(
                "covered_seqno={covered_seqno} blob_gen={blob_gen} bytes={}",
                bytes.len()
            ),
            &[("payload_bytes", payload.len() as u64)],
        );
        Ok(final_path)
    }

    /// Loads the newest snapshot that validates. `Ok(None)` means the
    /// directory holds no snapshot files at all (fresh database); existing
    /// but unloadable snapshots are an error — silently starting empty
    /// would masquerade as data loss.
    pub fn load_latest(&self) -> Result<Option<LoadedSnapshot>> {
        let mut files = self.list()?;
        if files.is_empty() {
            return Ok(None);
        }
        let mut last_err: Option<DurableError> = None;
        while let Some((path, _)) = files.pop() {
            let bytes = fs::read(&path)?;
            match decode(&bytes) {
                Ok((covered, blob_gen, payload)) => {
                    return Ok(Some(LoadedSnapshot {
                        covered_seqno: covered,
                        blob_gen,
                        payload: payload.to_vec(),
                        path,
                    }));
                }
                Err(e) => {
                    counter!("mmdb_snapshots_skipped_corrupt_total").inc();
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| DurableError::Corrupt("no loadable snapshot".into())))
    }

    /// Removes all but the newest `keep` snapshot files.
    pub fn prune(&self, keep: usize) -> Result<()> {
        let files = self.list()?;
        if files.len() <= keep {
            return Ok(());
        }
        for (path, _) in &files[..files.len() - keep] {
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Smallest covered seqno among retained snapshots — the GC bound for
    /// WAL segments (records below it can never be needed again).
    pub fn oldest_covered(&self) -> Result<Option<u64>> {
        Ok(self.list()?.first().map(|&(_, covered)| covered))
    }
}

/// Reads just the header of a snapshot file (fsck helper).
pub fn read_info(path: &Path) -> Result<SnapshotInfo> {
    let bytes = fs::read(path)?;
    let (covered, blob_gen, payload) = decode(&bytes)?;
    Ok(SnapshotInfo {
        covered_seqno: covered,
        blob_gen,
        payload_len: payload.len() as u64,
        path: path.to_path_buf(),
    })
}

/// Opens `path`'s parent-relative tmp leftovers for cleanup at open.
pub fn remove_tmp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".snap.tmp"))
        {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("mmdb-snap-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_load_roundtrip_and_prune() {
        let dir = temp_dir("rt");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        for seq in [10u64, 20, 30] {
            store
                .write(seq, 0, format!("catalog-at-{seq}").as_bytes())
                .unwrap();
        }
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.covered_seqno, 30);
        assert_eq!(snap.payload, b"catalog-at-30");
        // Prune keeps the newest two.
        assert_eq!(store.list().unwrap().len(), SNAPSHOTS_RETAINED);
        assert_eq!(store.oldest_covered().unwrap(), Some(20));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(5, 0, b"good-old").unwrap();
        let newest = store.write(9, 0, b"doomed-new").unwrap();
        // Flip a payload byte in the newest snapshot.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xAA;
        fs::write(&newest, &bytes).unwrap();

        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.covered_seqno, 5);
        assert_eq!(snap.payload, b"good-old");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_is_an_error_not_empty() {
        let dir = temp_dir("allbad");
        let store = SnapshotStore::open(&dir).unwrap();
        let p = store.write(3, 0, b"payload").unwrap();
        fs::write(&p, b"garbage").unwrap();
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}

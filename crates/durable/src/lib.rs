//! Durable persistence for the MMDBMS: a segmented CRC-framed write-ahead
//! log, atomic catalog snapshots, crash recovery, and an offline checker.
//!
//! The paper's storage premise — images kept as compact sequences of
//! editing operations — makes the catalog unusually cheap to log durably:
//! an edit-sequence record is a few hundred bytes, not a raster. This
//! crate provides the machinery, generic over record payloads so it knows
//! nothing about catalogs or images:
//!
//! * [`wal::Wal`] — append-only segmented log. Records are CRC32-framed
//!   and length-prefixed ([`frame`]); segments rotate at a size threshold;
//!   a torn final record (crash mid-append) is detected and truncated at
//!   open. Acknowledgment durability follows a group-commit
//!   [`policy::FsyncPolicy`] (`always` / `interval` / `never`).
//! * [`snapshot::SnapshotStore`] — point-in-time payloads written to a
//!   temp file and renamed into place, each stamped with the WAL sequence
//!   number it covers and validated by checksum at load; a damaged latest
//!   snapshot falls back to the previous one.
//! * [`meta`] — the small versioned header that marks a directory as an
//!   MMDB data dir; [`DURABLE_FORMAT_VERSION`] tracks the wire protocol's
//!   version so "can talk to it" implies "can read its files".
//! * [`fsck`] — offline validation with stable `F` codes in the sequence
//!   analyzer's lint style.
//!
//! Recovery contract: load the newest valid snapshot, replay every WAL
//! record with a greater sequence number, tolerate exactly one torn record
//! at the very end of the log. Segment GC never removes a record above the
//! *oldest retained* snapshot's cover point, so the fallback snapshot
//! always has its replay tail.

mod crc;
mod error;
pub mod frame;
pub mod fsck;
pub mod meta;
pub mod policy;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use error::{DurableError, Result};
pub use fsck::{fsck as fsck_dir, Finding, FsckCode, FsckReport, Severity};
pub use policy::FsyncPolicy;
pub use snapshot::{LoadedSnapshot, SnapshotStore};
pub use wal::{Wal, WalOpenStats, WalOptions};

/// Version stamped into the meta header, segment headers, and snapshot
/// headers. Deliberately tracks the wire protocol's `PROTOCOL_VERSION`
/// (a deployment that can speak to a node can read the files it left
/// behind); a unit test in `mmdbms` pins the equality.
pub const DURABLE_FORMAT_VERSION: u32 = 2;

/// Oldest format this build still reads.
pub const MIN_DURABLE_FORMAT_VERSION: u32 = 2;

/// Eagerly registers this layer's metric series (zero-valued until traffic
/// arrives) so exposition shows the full durability schema from process
/// start.
pub fn register_metrics() {
    let g = mmdb_telemetry::global();
    for name in [
        "mmdb_wal_appends_total",
        "mmdb_wal_appended_bytes_total",
        "mmdb_wal_rotations_total",
        "mmdb_wal_gc_segments_total",
        "mmdb_snapshots_total",
        "mmdb_snapshot_bytes_total",
        "mmdb_snapshots_skipped_corrupt_total",
        "mmdb_recovery_replayed_records_total",
        "mmdb_recovery_torn_bytes_total",
    ] {
        let _ = g.counter(name);
    }
    for name in [
        "mmdb_wal_segments",
        "mmdb_wal_active_segment_bytes",
        "mmdb_snapshot_last_seqno",
    ] {
        let _ = g.gauge(name);
    }
    for name in [
        "mmdb_wal_fsync_seconds",
        "mmdb_snapshot_seconds",
        "mmdb_recovery_seconds",
    ] {
        let _ = g.histogram(name);
    }
}

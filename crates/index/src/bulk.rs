//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building an R-tree by repeated insertion produces mediocre node overlap;
//! for a static collection (the common case when indexing a whole image
//! database's histograms at once) STR packing yields near-optimal leaves:
//! sort by the first axis, cut into vertical slabs, sort each slab by the
//! next axis, recurse — then pack runs of `M` entries into leaves.

use crate::mbr::Mbr;
use crate::rtree::RTree;

/// Bulk-loads an R-tree from `(mbr, value)` pairs using STR packing.
///
/// # Panics
/// Panics when entries disagree on dimensionality or `max_entries < 4`.
pub fn bulk_load_str<T>(dims: usize, max_entries: usize, entries: Vec<(Mbr, T)>) -> RTree<T> {
    assert!(max_entries >= 4, "node capacity must be at least 4");
    for (m, _) in &entries {
        assert_eq!(m.dims(), dims, "entry dimensionality mismatch");
    }
    let len = entries.len();
    if len == 0 {
        return RTree::with_capacity(dims, max_entries);
    }
    let mut entries = entries;
    str_sort(&mut entries, 0, dims, max_entries);
    // Pack sorted entries into leaves of up to `max_entries`.
    let mut leaves: Vec<(Mbr, Vec<(Mbr, T)>)> = Vec::with_capacity(len.div_ceil(max_entries));
    let mut iter = entries.into_iter().peekable();
    while iter.peek().is_some() {
        let chunk: Vec<(Mbr, T)> = iter.by_ref().take(max_entries).collect();
        let mbr = chunk
            .iter()
            .map(|(m, _)| m.clone())
            .reduce(|a, b| a.union(&b))
            .expect("chunk is non-empty");
        leaves.push((mbr, chunk));
    }
    RTree::from_parts(dims, max_entries, leaves, len)
}

/// Recursively tile-sorts `entries[..]` on `axis`, slabbing so that deeper
/// axes see contiguous runs.
fn str_sort<T>(entries: &mut [(Mbr, T)], axis: usize, dims: usize, max_entries: usize) {
    if axis >= dims || entries.len() <= max_entries {
        return;
    }
    let center = |m: &Mbr| (m.lo()[axis] + m.hi()[axis]) / 2.0;
    entries.sort_by(|a, b| {
        center(&a.0)
            .partial_cmp(&center(&b.0))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Number of leaves and vertical slabs per STR.
    let leaves = entries.len().div_ceil(max_entries);
    let slabs = (leaves as f64)
        .powf(1.0 / (dims - axis) as f64)
        .ceil()
        .max(1.0) as usize;
    let slab_size = entries.len().div_ceil(slabs).max(1);
    let mut start = 0;
    while start < entries.len() {
        let end = (start + slab_size).min(entries.len());
        str_sort(&mut entries[start..end], axis + 1, dims, max_entries);
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn empty_bulk_load() {
        let t: RTree<u8> = bulk_load_str(4, 8, Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.dims(), 4);
    }

    #[test]
    fn bulk_load_preserves_all_entries() {
        let entries: Vec<(Mbr, usize)> = (0..1000)
            .map(|i| {
                let x = (i % 37) as f64;
                let y = (i / 37) as f64;
                (Mbr::point(&[x, y]), i)
            })
            .collect();
        let t = bulk_load_str(2, 8, entries);
        assert_eq!(t.len(), 1000);
        let all = t.search_intersecting(&Mbr::new(vec![-1.0, -1.0], vec![100.0, 100.0]));
        assert_eq!(all.len(), 1000);
        let mut seen = vec![false; 1000];
        for &v in all {
            assert!(!seen[v], "duplicate {v}");
            seen[v] = true;
        }
    }

    #[test]
    fn bulk_load_search_matches_scan_high_dim() {
        let mut seed = 7u64;
        let dims = 8;
        let entries: Vec<(Mbr, usize)> = (0..600)
            .map(|i| {
                let p: Vec<f64> = (0..dims).map(|_| lcg(&mut seed)).collect();
                (Mbr::point(&p), i)
            })
            .collect();
        let copy = entries.clone();
        let t = bulk_load_str(dims, 12, entries);
        let q = Mbr::new(vec![0.1; dims], vec![0.9; dims]);
        let mut expect: Vec<usize> = copy
            .iter()
            .filter(|(m, _)| m.intersects(&q))
            .map(|(_, v)| *v)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<usize> = t.search_intersecting(&q).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn bulk_loaded_tree_supports_knn() {
        let entries: Vec<(Mbr, (i64, i64))> = (0..20)
            .flat_map(|x| (0..20).map(move |y| (x, y)))
            .map(|(x, y)| (Mbr::point(&[x as f64, y as f64]), (x, y)))
            .collect();
        let t = bulk_load_str(2, 10, entries);
        let nn = t.nearest(&[10.4, 10.4], 1);
        assert_eq!(*nn[0].1, (10, 10));
    }

    #[test]
    fn bulk_loaded_tree_is_shallower_than_inserted() {
        let make = || -> Vec<(Mbr, usize)> {
            (0..4096)
                .map(|i| (Mbr::point(&[(i % 64) as f64, (i / 64) as f64]), i))
                .collect()
        };
        let bulk = bulk_load_str(2, 16, make());
        let mut dynamic = RTree::with_capacity(2, 16);
        for (m, v) in make() {
            dynamic.insert(m, v);
        }
        assert!(bulk.height() <= dynamic.height());
        // Perfect packing: ceil(log_16(4096/16)) + 1 = 3.
        assert!(bulk.height() <= 3, "bulk height {}", bulk.height());
    }

    #[test]
    fn single_entry_bulk_load() {
        let t = bulk_load_str(2, 4, vec![(Mbr::point(&[1.0, 2.0]), 'z')]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.search_intersecting(&Mbr::point(&[1.0, 2.0])), vec![&'z']);
    }
}

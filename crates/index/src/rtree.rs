//! A dynamic R-tree (Guttman 1984) with quadratic node splitting.

use crate::mbr::Mbr;
use std::collections::BinaryHeap;

/// Default maximum entries per node.
pub const DEFAULT_MAX_ENTRIES: usize = 16;

/// An R-tree mapping d-dimensional rectangles to payloads of type `T`.
pub struct RTree<T> {
    dims: usize,
    max_entries: usize,
    min_entries: usize,
    root: Node<T>,
    len: usize,
}

enum Node<T> {
    Leaf(Vec<(Mbr, T)>),
    Inner(Vec<(Mbr, Node<T>)>),
}

impl<T> Node<T> {
    fn mbr(&self) -> Option<Mbr> {
        let mut boxes: Box<dyn Iterator<Item = &Mbr>> = match self {
            Node::Leaf(entries) => Box::new(entries.iter().map(|(m, _)| m)),
            Node::Inner(children) => Box::new(children.iter().map(|(m, _)| m)),
        };
        let first = boxes.next()?.clone();
        Some(boxes.fold(first, |acc, m| acc.union(m)))
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf(entries) => entries.len(),
            Node::Inner(children) => children.len(),
        }
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree over `dims`-dimensional rectangles with the
    /// default node capacity.
    pub fn new(dims: usize) -> Self {
        Self::with_capacity(dims, DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with an explicit node capacity `M` (minimum
    /// fill is `M / 2`, per Guttman's recommendation upper bound).
    ///
    /// # Panics
    /// Panics when `dims == 0` or `max_entries < 4`.
    pub fn with_capacity(dims: usize, max_entries: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        assert!(max_entries >= 4, "node capacity must be at least 4");
        RTree {
            dims,
            max_entries,
            min_entries: (max_entries / 2).max(2),
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entry.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Height of the tree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(children) = node {
            h += 1;
            node = &children[0].1;
        }
        h
    }

    /// Inserts `value` under bounding box `mbr`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn insert(&mut self, mbr: Mbr, value: T) {
        assert_eq!(mbr.dims(), self.dims, "MBR dimensionality mismatch");
        let max = self.max_entries;
        let min = self.min_entries;
        if let Some((sib_mbr, sibling)) = insert_rec(&mut self.root, mbr, value, max, min) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            let old_mbr = old_root.mbr().expect("split root is non-empty");
            self.root = Node::Inner(vec![(old_mbr, old_root), (sib_mbr, sibling)]);
        }
        self.len += 1;
    }

    /// Collects references to every payload whose box intersects `query`.
    pub fn search_intersecting<'a>(&'a self, query: &Mbr) -> Vec<&'a T> {
        let mut out = Vec::new();
        search_rec(&self.root, query, &mut out);
        out
    }

    /// Collects `(mbr, payload)` pairs whose box intersects `query`.
    pub fn search_entries<'a>(&'a self, query: &Mbr) -> Vec<(&'a Mbr, &'a T)> {
        let mut out = Vec::new();
        search_entries_rec(&self.root, query, &mut out);
        out
    }

    /// Visits every entry (no spatial filter).
    pub fn for_each(&self, mut f: impl FnMut(&Mbr, &T)) {
        fn walk<T>(node: &Node<T>, f: &mut impl FnMut(&Mbr, &T)) {
            match node {
                Node::Leaf(entries) => {
                    for (m, v) in entries {
                        f(m, v);
                    }
                }
                Node::Inner(children) => {
                    for (_, c) in children {
                        walk(c, f);
                    }
                }
            }
        }
        walk(&self.root, &mut f);
    }

    /// Best-first k-nearest-neighbour search from `point`, using MINDIST
    /// pruning. Returns up to `k` `(distance, payload)` pairs ordered by
    /// ascending Euclidean distance (computed between `point` and each
    /// entry's box).
    pub fn nearest(&self, point: &[f64], k: usize) -> Vec<(f64, &T)> {
        assert_eq!(
            point.len(),
            self.dims,
            "query point dimensionality mismatch"
        );
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Max-heap on Reverse(dist) = min-heap by distance.
        enum Item<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a T),
        }
        struct Queued<'a, T> {
            dist: f64,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for Queued<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl<T> Eq for Queued<'_, T> {}
        impl<T> PartialOrd for Queued<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Queued<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: smaller distance = greater priority.
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<Queued<'_, T>> = BinaryHeap::new();
        heap.push(Queued {
            dist: 0.0,
            item: Item::Node(&self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(Queued { dist, item }) = heap.pop() {
            match item {
                Item::Entry(v) => {
                    out.push((dist.sqrt(), v));
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf(entries)) => {
                    for (m, v) in entries {
                        heap.push(Queued {
                            dist: m.min_dist_sq(point),
                            item: Item::Entry(v),
                        });
                    }
                }
                Item::Node(Node::Inner(children)) => {
                    for (m, c) in children {
                        heap.push(Queued {
                            dist: m.min_dist_sq(point),
                            item: Item::Node(c),
                        });
                    }
                }
            }
        }
        out
    }

    /// Constructs a tree directly from pre-built levels (used by STR bulk
    /// loading). Internal to the crate.
    pub(crate) fn from_parts(
        dims: usize,
        max_entries: usize,
        root: Vec<(Mbr, Vec<(Mbr, T)>)>,
        len: usize,
    ) -> Self {
        // `root` is a list of leaf nodes with their MBRs; build upper levels
        // by repeatedly packing groups of `max_entries`.
        let mut level: Vec<(Mbr, Node<T>)> = root
            .into_iter()
            .map(|(m, entries)| (m, Node::Leaf(entries)))
            .collect();
        if level.is_empty() {
            return RTree::with_capacity(dims, max_entries);
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(max_entries));
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let children: Vec<(Mbr, Node<T>)> = iter.by_ref().take(max_entries).collect();
                let mbr = children
                    .iter()
                    .map(|(m, _)| m.clone())
                    .reduce(|a, b| a.union(&b))
                    .expect("chunk is non-empty");
                next.push((mbr, Node::Inner(children)));
            }
            level = next;
        }
        let (_, root_node) = level.pop().expect("one root remains");
        RTree {
            dims,
            max_entries,
            min_entries: (max_entries / 2).max(2),
            root: root_node,
            len,
        }
    }
}

impl<T: PartialEq> RTree<T> {
    /// Removes one entry equal to (`mbr`, `value`). Returns true when an
    /// entry was removed. Underfull nodes are condensed and their entries
    /// re-inserted (Guttman's CondenseTree).
    pub fn remove(&mut self, mbr: &Mbr, value: &T) -> bool {
        let min = self.min_entries;
        let mut orphans = Vec::new();
        let removed = remove_rec(&mut self.root, mbr, value, min, &mut orphans);
        if !removed {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.len -= 1;
        // Shrink the root while it is an inner node with a single child.
        loop {
            match &mut self.root {
                Node::Inner(children) if children.len() == 1 => {
                    let (_, child) = children.pop().expect("one child");
                    self.root = child;
                }
                Node::Inner(children) if children.is_empty() => {
                    self.root = Node::Leaf(Vec::new());
                }
                _ => break,
            }
        }
        self.len -= orphans.len();
        for (m, v) in orphans {
            self.insert(m, v);
        }
        true
    }
}

fn search_rec<'a, T>(node: &'a Node<T>, query: &Mbr, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf(entries) => {
            for (m, v) in entries {
                if m.intersects(query) {
                    out.push(v);
                }
            }
        }
        Node::Inner(children) => {
            for (m, c) in children {
                if m.intersects(query) {
                    search_rec(c, query, out);
                }
            }
        }
    }
}

fn search_entries_rec<'a, T>(node: &'a Node<T>, query: &Mbr, out: &mut Vec<(&'a Mbr, &'a T)>) {
    match node {
        Node::Leaf(entries) => {
            for (m, v) in entries {
                if m.intersects(query) {
                    out.push((m, v));
                }
            }
        }
        Node::Inner(children) => {
            for (m, c) in children {
                if m.intersects(query) {
                    search_entries_rec(c, query, out);
                }
            }
        }
    }
}

/// Recursive insert. Returns `Some((mbr, sibling))` when the child split.
fn insert_rec<T>(
    node: &mut Node<T>,
    mbr: Mbr,
    value: T,
    max: usize,
    min: usize,
) -> Option<(Mbr, Node<T>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((mbr, value));
            if entries.len() > max {
                let (left, right) = quadratic_split(std::mem::take(entries), min);
                *entries = left;
                let right_mbr = mbr_of(&right);
                return Some((right_mbr, Node::Leaf(right)));
            }
            None
        }
        Node::Inner(children) => {
            // ChooseSubtree: least enlargement, ties by smallest area.
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, (m1, _)), (_, (m2, _))| {
                    let e1 = m1.enlargement(&mbr);
                    let e2 = m2.enlargement(&mbr);
                    e1.partial_cmp(&e2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            m1.area()
                                .partial_cmp(&m2.area())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .map(|(i, _)| i)
                .expect("inner node has children");
            children[idx].0.expand(&mbr);
            if let Some((sib_mbr, sibling)) = insert_rec(&mut children[idx].1, mbr, value, max, min)
            {
                // Recompute the split child's MBR (it shrank).
                children[idx].0 = children[idx].1.mbr().expect("non-empty after split");
                children.push((sib_mbr, sibling));
                if children.len() > max {
                    let (left, right) = quadratic_split(std::mem::take(children), min);
                    *children = left;
                    let right_mbr = mbr_of(&right);
                    return Some((right_mbr, Node::Inner(right)));
                }
            }
            None
        }
    }
}

/// Recursive delete with condensing: when a node underflows its surviving
/// leaf entries are drained into `orphans` for re-insertion.
fn remove_rec<T: PartialEq>(
    node: &mut Node<T>,
    mbr: &Mbr,
    value: &T,
    min: usize,
    orphans: &mut Vec<(Mbr, T)>,
) -> bool {
    match node {
        Node::Leaf(entries) => {
            if let Some(pos) = entries.iter().position(|(m, v)| m == mbr && v == value) {
                entries.swap_remove(pos);
                true
            } else {
                false
            }
        }
        Node::Inner(children) => {
            for i in 0..children.len() {
                if !children[i].0.intersects(mbr) {
                    continue;
                }
                if remove_rec(&mut children[i].1, mbr, value, min, orphans) {
                    if children[i].1.len() < min {
                        // Condense: drop the node, orphan its leaf entries.
                        let (_, dead) = children.swap_remove(i);
                        collect_leaf_entries(dead, orphans);
                    } else {
                        children[i].0 = children[i].1.mbr().expect("non-empty child");
                    }
                    return true;
                }
            }
            false
        }
    }
}

fn collect_leaf_entries<T>(node: Node<T>, out: &mut Vec<(Mbr, T)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner(children) => {
            for (_, c) in children {
                collect_leaf_entries(c, out);
            }
        }
    }
}

fn mbr_of<E: HasMbr>(entries: &[E]) -> Mbr {
    let mut it = entries.iter();
    let first = it.next().expect("non-empty entry list").mbr_ref().clone();
    it.fold(first, |acc, e| acc.union(e.mbr_ref()))
}

trait HasMbr {
    fn mbr_ref(&self) -> &Mbr;
}

impl<T> HasMbr for (Mbr, T) {
    fn mbr_ref(&self) -> &Mbr {
        &self.0
    }
}

/// Guttman's quadratic split: pick the pair of entries wasting the most area
/// as seeds, then assign remaining entries to the group whose MBR grows
/// least, honouring the minimum fill.
fn quadratic_split<E: HasMbr>(mut entries: Vec<E>, min: usize) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() >= 2);
    // PickSeeds.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let mi = entries[i].mbr_ref();
            let mj = entries[j].mbr_ref();
            let waste = mi.union(mj).area() - mi.area() - mj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the higher index first to keep the lower valid.
    let seed2 = entries.swap_remove(s2.max(s1));
    let seed1 = entries.swap_remove(s2.min(s1));
    let mut mbr1 = seed1.mbr_ref().clone();
    let mut mbr2 = seed2.mbr_ref().clone();
    let mut g1 = vec![seed1];
    let mut g2 = vec![seed2];

    while let Some(next) = entries.pop() {
        let remaining = entries.len();
        // Force assignment when a group must take everything left to reach
        // the minimum fill.
        if g1.len() + remaining < min {
            mbr1.expand(next.mbr_ref());
            g1.push(next);
            continue;
        }
        if g2.len() + remaining < min {
            mbr2.expand(next.mbr_ref());
            g2.push(next);
            continue;
        }
        let e1 = mbr1.enlargement(next.mbr_ref());
        let e2 = mbr2.enlargement(next.mbr_ref());
        let into_first = match e1.partial_cmp(&e2) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => mbr1.area() <= mbr2.area(),
        };
        if into_first {
            mbr1.expand(next.mbr_ref());
            g1.push(next);
        } else {
            mbr2.expand(next.mbr_ref());
            g2.push(next);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: f64, y: f64) -> Mbr {
        Mbr::point(&[x, y])
    }

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Mbr {
        Mbr::new(vec![x0, y0], vec![x1, y1])
    }

    /// Deterministic pseudo-random stream (LCG) for structure-independent
    /// bulk tests without pulling `rand` into the unit tests.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn insert_and_point_search() {
        let mut t = RTree::new(2);
        for i in 0..100 {
            t.insert(point(i as f64, i as f64), i);
        }
        assert_eq!(t.len(), 100);
        let hits = t.search_intersecting(&rect(9.5, 9.5, 12.5, 12.5));
        let mut got: Vec<i32> = hits.into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 12]);
    }

    #[test]
    fn search_matches_linear_scan() {
        let mut t = RTree::with_capacity(3, 8);
        let mut seed = 42u64;
        let mut all = Vec::new();
        for i in 0..500 {
            let lo: Vec<f64> = (0..3).map(|_| lcg(&mut seed)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + 0.05).collect();
            let m = Mbr::new(lo, hi);
            all.push((m.clone(), i));
            t.insert(m, i);
        }
        let query = Mbr::new(vec![0.2, 0.2, 0.2], vec![0.5, 0.5, 0.5]);
        let mut expect: Vec<i32> = all
            .iter()
            .filter(|(m, _)| m.intersects(&query))
            .map(|(_, v)| *v)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<i32> = t.search_intersecting(&query).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert!(!expect.is_empty(), "query should match something");
    }

    #[test]
    fn tree_grows_in_height() {
        let mut t = RTree::with_capacity(2, 4);
        for i in 0..200 {
            t.insert(point((i % 20) as f64, (i / 20) as f64), i);
        }
        assert!(t.height() >= 3, "height {}", t.height());
        assert_eq!(t.len(), 200);
        // Everything still findable.
        assert_eq!(
            t.search_intersecting(&rect(-1.0, -1.0, 30.0, 30.0)).len(),
            200
        );
    }

    #[test]
    fn nearest_neighbors_exact() {
        let mut t = RTree::new(2);
        for x in 0..10 {
            for y in 0..10 {
                t.insert(point(x as f64, y as f64), (x, y));
            }
        }
        let nn = t.nearest(&[3.2, 3.1], 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(*nn[0].1, (3, 3));
        assert!(nn[0].0 <= nn[1].0 && nn[1].0 <= nn[2].0);
        // Brute-force verification of the k=5 result set.
        let nn5 = t.nearest(&[7.7, 1.2], 5);
        let mut brute: Vec<(f64, (i32, i32))> = (0..10)
            .flat_map(|x| (0..10).map(move |y| (x, y)))
            .map(|(x, y)| {
                let dx = x as f64 - 7.7;
                let dy = y as f64 - 1.2;
                ((dx * dx + dy * dy).sqrt(), (x, y))
            })
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (got, want) in nn5.iter().zip(brute.iter()) {
            assert!((got.0 - want.0).abs() < 1e-9);
        }
    }

    #[test]
    fn nearest_with_k_larger_than_len() {
        let mut t = RTree::new(2);
        t.insert(point(0.0, 0.0), 'a');
        t.insert(point(1.0, 1.0), 'b');
        let nn = t.nearest(&[0.0, 0.0], 10);
        assert_eq!(nn.len(), 2);
        assert_eq!(*nn[0].1, 'a');
    }

    #[test]
    fn nearest_on_empty() {
        let t: RTree<u8> = RTree::new(2);
        assert!(t.nearest(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut t = RTree::with_capacity(2, 4);
        for i in 0..50 {
            t.insert(point(i as f64, 0.0), i);
        }
        assert!(t.remove(&point(7.0, 0.0), &7));
        assert_eq!(t.len(), 49);
        assert!(!t.remove(&point(7.0, 0.0), &7), "double remove");
        assert!(!t.remove(&point(3.0, 0.0), &999), "wrong value");
        let hits = t.search_intersecting(&point(7.0, 0.0));
        assert!(hits.is_empty());
        // Everything else intact.
        assert_eq!(
            t.search_intersecting(&rect(-1.0, -1.0, 60.0, 1.0)).len(),
            49
        );
    }

    #[test]
    fn remove_down_to_empty() {
        let mut t = RTree::with_capacity(2, 4);
        for i in 0..30 {
            t.insert(point(i as f64, i as f64), i);
        }
        for i in 0..30 {
            assert!(t.remove(&point(i as f64, i as f64), &i), "remove {i}");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        // Tree is reusable after emptying.
        t.insert(point(1.0, 1.0), 123);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn for_each_visits_all() {
        let mut t = RTree::with_capacity(2, 5);
        for i in 0..64 {
            t.insert(point(i as f64, -(i as f64)), i);
        }
        let mut seen = [false; 64];
        t.for_each(|_, &v| seen[v as usize] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn duplicate_boxes_supported() {
        let mut t = RTree::new(2);
        for i in 0..10 {
            t.insert(point(1.0, 1.0), i);
        }
        assert_eq!(t.search_intersecting(&point(1.0, 1.0)).len(), 10);
        assert!(t.remove(&point(1.0, 1.0), &5));
        assert_eq!(t.search_intersecting(&point(1.0, 1.0)).len(), 9);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_panic() {
        let mut t = RTree::new(2);
        t.insert(Mbr::point(&[1.0, 2.0, 3.0]), 0);
    }

    #[test]
    fn search_entries_returns_boxes() {
        let mut t = RTree::new(2);
        t.insert(rect(0.0, 0.0, 1.0, 1.0), 'a');
        t.insert(rect(5.0, 5.0, 6.0, 6.0), 'b');
        let hits = t.search_entries(&rect(0.5, 0.5, 0.6, 0.6));
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].1, 'a');
        assert_eq!(hits[0].0, &rect(0.0, 0.0, 1.0, 1.0));
    }
}

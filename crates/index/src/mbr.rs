//! Minimum bounding rectangles in d dimensions.

/// A d-dimensional minimum bounding rectangle (closed box `[lo_i, hi_i]` per
/// axis).
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    /// Creates an MBR from per-axis bounds.
    ///
    /// # Panics
    /// Panics when the vectors differ in length, are empty, or any
    /// `lo > hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "lo/hi dimension mismatch");
        assert!(!lo.is_empty(), "MBR must have at least one dimension");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "axis {i}: lo {l} > hi {h}");
        }
        Mbr { lo, hi }
    }

    /// A degenerate (point) MBR.
    pub fn point(coords: &[f64]) -> Self {
        Mbr::new(coords.to_vec(), coords.to_vec())
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Hyper-volume (product of extents). Zero for point MBRs.
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Sum of extents (the "margin" used by some split heuristics).
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    /// True when `self` and `other` share any point.
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((l1, h1), (l2, h2))| l1 <= h2 && l2 <= h1)
    }

    /// True when `other` lies entirely within `self`.
    pub fn contains(&self, other: &Mbr) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((l1, h1), (l2, h2))| l1 <= l2 && h2 <= h1)
    }

    /// True when the point is inside the box.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), x)| l <= x && x <= h)
    }

    /// The smallest MBR covering both.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(a, b)| a.min(*b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(a, b)| a.max(*b))
            .collect();
        Mbr { lo, hi }
    }

    /// Grows this MBR in place to cover `other`.
    pub fn expand(&mut self, other: &Mbr) {
        for (a, b) in self.lo.iter_mut().zip(&other.lo) {
            *a = a.min(*b);
        }
        for (a, b) in self.hi.iter_mut().zip(&other.hi) {
            *a = a.max(*b);
        }
    }

    /// Area increase needed to cover `other` — Guttman's insertion
    /// criterion.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Overlap volume with `other` (zero when disjoint).
    pub fn overlap(&self, other: &Mbr) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .map(|((l1, h1), (l2, h2))| (h1.min(*h2) - l1.max(*l2)).max(0.0))
            .product()
    }

    /// Squared MINDIST from a point to the box — the classic R-tree k-NN
    /// lower bound (0 when the point is inside).
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .map(|((l, h), x)| {
                let d = if x < l {
                    l - x
                } else if x > h {
                    x - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: &[f64], hi: &[f64]) -> Mbr {
        Mbr::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_margin() {
        let m = b(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(m.area(), 6.0);
        assert_eq!(m.margin(), 5.0);
        assert_eq!(Mbr::point(&[1.0, 1.0]).area(), 0.0);
    }

    #[test]
    fn intersection_and_containment() {
        let a = b(&[0.0, 0.0], &[4.0, 4.0]);
        let c = b(&[1.0, 1.0], &[2.0, 2.0]);
        let d = b(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(a.intersects(&c));
        assert!(a.contains(&c));
        assert!(!c.contains(&a));
        assert!(!a.intersects(&d));
        // Touching edges count as intersecting (closed boxes).
        let e = b(&[4.0, 0.0], &[5.0, 4.0]);
        assert!(a.intersects(&e));
        assert!(a.contains_point(&[4.0, 4.0]));
        assert!(!a.contains_point(&[4.1, 0.0]));
    }

    #[test]
    fn union_expand_enlargement() {
        let a = b(&[0.0, 0.0], &[1.0, 1.0]);
        let c = b(&[2.0, 2.0], &[3.0, 3.0]);
        let u = a.union(&c);
        assert_eq!(u, b(&[0.0, 0.0], &[3.0, 3.0]));
        assert_eq!(a.enlargement(&c), 9.0 - 1.0);
        let mut a2 = a.clone();
        a2.expand(&c);
        assert_eq!(a2, u);
        // Enlargement of a contained box is zero.
        assert_eq!(u.enlargement(&a), 0.0);
    }

    #[test]
    fn overlap_volume() {
        let a = b(&[0.0, 0.0], &[2.0, 2.0]);
        let c = b(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.overlap(&c), 1.0);
        let d = b(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap(&d), 0.0);
    }

    #[test]
    fn min_dist() {
        let a = b(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(a.min_dist_sq(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist_sq(&[3.0, 2.0]), 1.0);
        assert_eq!(a.min_dist_sq(&[3.0, 3.0]), 2.0);
        assert_eq!(a.min_dist_sq(&[-2.0, 1.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn inverted_bounds_panic() {
        b(&[2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        Mbr::new(vec![0.0], vec![1.0, 2.0]);
    }
}

#![warn(missing_docs)]

//! # mmdb-index
//!
//! A multidimensional access method for histogram signatures. §3.1 of the
//! paper: "to reduce the query processing time, the histograms can be
//! organized in multidimensional indexes such as the R-tree and its numerous
//! variants" — and §4's BWM structure is motivated by analogy to exactly
//! this kind of index.
//!
//! The crate provides a from-scratch R-tree over `f64` rectangles of
//! arbitrary (fixed) dimension:
//!
//! * dynamic insertion with Guttman's quadratic split,
//! * deletion with node condensing and re-insertion,
//! * rectangle **range search** (intersection semantics),
//! * best-first **k-nearest-neighbour** search by MINDIST,
//! * Sort-Tile-Recursive (**STR**) bulk loading for static collections.
//!
//! Payloads are a generic `T`; the query layer stores image ids.

pub mod bulk;
pub mod mbr;
pub mod rtree;

pub use bulk::bulk_load_str;
pub use mbr::Mbr;
pub use rtree::RTree;

//! Property tests for the R-tree: every query answer is checked against a
//! naive linear-scan oracle under random workloads of inserts, removes and
//! searches.

use mmdb_index::{bulk_load_str, Mbr, RTree};
use proptest::prelude::*;

const DIMS: usize = 3;

fn arb_box() -> impl Strategy<Value = Mbr> {
    (
        proptest::collection::vec(0.0f64..100.0, DIMS),
        proptest::collection::vec(0.0f64..10.0, DIMS),
    )
        .prop_map(|(lo, ext)| {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            Mbr::new(lo, hi)
        })
}

#[derive(Clone, Debug)]
enum Action {
    Insert(Mbr),
    RemoveExisting(usize),
    Search(Mbr),
    Knn(Vec<f64>, usize),
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => arb_box().prop_map(Action::Insert),
        1 => any::<usize>().prop_map(Action::RemoveExisting),
        2 => arb_box().prop_map(Action::Search),
        1 => (proptest::collection::vec(0.0f64..110.0, DIMS), 1usize..8)
            .prop_map(|(p, k)| Action::Knn(p, k)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The R-tree answers every search/knn identically to a linear scan,
    /// through arbitrary interleavings of inserts and removes.
    #[test]
    fn rtree_matches_oracle(actions in proptest::collection::vec(arb_action(), 1..80)) {
        let mut tree: RTree<usize> = RTree::with_capacity(DIMS, 5);
        let mut oracle: Vec<(Mbr, usize)> = Vec::new();
        let mut next_id = 0usize;
        for action in actions {
            match action {
                Action::Insert(mbr) => {
                    tree.insert(mbr.clone(), next_id);
                    oracle.push((mbr, next_id));
                    next_id += 1;
                }
                Action::RemoveExisting(raw) => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let idx = raw % oracle.len();
                    let (mbr, id) = oracle.swap_remove(idx);
                    prop_assert!(tree.remove(&mbr, &id), "remove of live entry failed");
                }
                Action::Search(query) => {
                    let mut got: Vec<usize> =
                        tree.search_intersecting(&query).into_iter().copied().collect();
                    got.sort_unstable();
                    let mut expect: Vec<usize> = oracle
                        .iter()
                        .filter(|(m, _)| m.intersects(&query))
                        .map(|&(_, id)| id)
                        .collect();
                    expect.sort_unstable();
                    prop_assert_eq!(got, expect);
                }
                Action::Knn(point, k) => {
                    let got = tree.nearest(&point, k);
                    let mut expect: Vec<(f64, usize)> = oracle
                        .iter()
                        .map(|(m, id)| (m.min_dist_sq(&point).sqrt(), *id))
                        .collect();
                    expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    expect.truncate(k);
                    prop_assert_eq!(got.len(), expect.len());
                    // Distances must agree (payload order may differ on ties).
                    for ((gd, _), (ed, _)) in got.iter().zip(&expect) {
                        prop_assert!((gd - ed).abs() < 1e-9, "{gd} vs {ed}");
                    }
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }
    }

    /// Bulk loading preserves the exact entry multiset and answers searches
    /// like the oracle.
    #[test]
    fn bulk_load_matches_oracle(
        boxes in proptest::collection::vec(arb_box(), 0..200),
        query in arb_box(),
    ) {
        let entries: Vec<(Mbr, usize)> =
            boxes.into_iter().enumerate().map(|(i, m)| (m, i)).collect();
        let oracle = entries.clone();
        let tree = bulk_load_str(DIMS, 6, entries);
        prop_assert_eq!(tree.len(), oracle.len());
        let mut got: Vec<usize> = tree.search_intersecting(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = oracle
            .iter()
            .filter(|(m, _)| m.intersects(&query))
            .map(|&(_, id)| id)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// MBR algebra invariants.
    #[test]
    fn mbr_algebra(a in arb_box(), b in arb_box(), p in proptest::collection::vec(0.0f64..110.0, DIMS)) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a) && u.contains(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        prop_assert!(a.enlargement(&b) >= -1e-9);
        // MINDIST is zero iff the point is inside (within fp tolerance).
        let d = a.min_dist_sq(&p);
        if a.contains_point(&p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
        // Overlap is symmetric and bounded by both areas.
        let ov = a.overlap(&b);
        prop_assert!((ov - b.overlap(&a)).abs() < 1e-9);
        prop_assert!(ov <= a.area() + 1e-9 && ov <= b.area() + 1e-9);
    }
}

//! Integer geometry: points and axis-aligned rectangles.
//!
//! Rectangles are the canonical shape of the paper's *Defined Region* (the
//! `Define` operation takes "the coordinates of the desired group of pixels"),
//! and also back the drawing primitives in [`crate::draw`].

use serde::{Deserialize, Serialize};

/// An integer pixel coordinate. `x` is the column, `y` the row; the origin is
/// the top-left corner of an image. Coordinates are signed so that geometry
/// produced by `Mutate` transforms can temporarily leave image bounds before
/// being clipped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Point {
    /// Column.
    pub x: i64,
    /// Row.
    pub y: i64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }
}

/// A half-open axis-aligned rectangle: pixels with `x0 <= x < x1` and
/// `y0 <= y < y1`. An empty rectangle has `x1 <= x0` or `y1 <= y0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Inclusive left edge.
    pub x0: i64,
    /// Inclusive top edge.
    pub y0: i64,
    /// Exclusive right edge.
    pub x1: i64,
    /// Exclusive bottom edge.
    pub y1: i64,
}

impl Rect {
    /// The canonical empty rectangle.
    pub const EMPTY: Rect = Rect {
        x0: 0,
        y0: 0,
        x1: 0,
        y1: 0,
    };

    /// Creates a rectangle from edges. Edges are not reordered; a rectangle
    /// with `x1 <= x0` is simply empty.
    #[inline]
    pub const fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Rect { x0, y0, x1, y1 }
    }

    /// Creates a rectangle from an origin and a size.
    #[inline]
    pub const fn from_origin_size(x: i64, y: i64, w: i64, h: i64) -> Self {
        Rect::new(x, y, x + w, y + h)
    }

    /// Rectangle covering an entire `w`×`h` image.
    #[inline]
    pub const fn of_image(w: u32, h: u32) -> Self {
        Rect::new(0, 0, w as i64, h as i64)
    }

    /// Width (zero if empty).
    #[inline]
    pub fn width(&self) -> i64 {
        (self.x1 - self.x0).max(0)
    }

    /// Height (zero if empty).
    #[inline]
    pub fn height(&self) -> i64 {
        (self.y1 - self.y0).max(0)
    }

    /// Number of pixels covered.
    #[inline]
    pub fn area(&self) -> u64 {
        (self.width() as u64) * (self.height() as u64)
    }

    /// True when the rectangle covers no pixel.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    /// True when `(x, y)` lies inside.
    #[inline]
    pub fn contains(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// True when `other` is fully inside `self`. An empty `other` is
    /// contained in everything.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.x0 >= self.x0
                && other.x1 <= self.x1
                && other.y0 >= self.y0
                && other.y1 <= self.y1)
    }

    /// Intersection (empty if disjoint).
    #[inline]
    pub fn intersect(&self, other: &Rect) -> Rect {
        let r = Rect::new(
            self.x0.max(other.x0),
            self.y0.max(other.y0),
            self.x1.min(other.x1),
            self.y1.min(other.y1),
        );
        if r.is_empty() {
            Rect::EMPTY
        } else {
            r
        }
    }

    /// Smallest rectangle covering both (empty inputs are ignored).
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::new(
            self.x0.min(other.x0),
            self.y0.min(other.y0),
            self.x1.max(other.x1),
            self.y1.max(other.y1),
        )
    }

    /// Translates by `(dx, dy)`.
    #[inline]
    pub fn translate(&self, dx: i64, dy: i64) -> Rect {
        Rect::new(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)
    }

    /// Iterates over every `(x, y)` pixel coordinate in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let r = *self;
        (r.y0..r.y1.max(r.y0)).flat_map(move |y| (r.x0..r.x1.max(r.x0)).map(move |x| (x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_emptiness() {
        let r = Rect::new(2, 3, 5, 7);
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 12);
        assert!(!r.is_empty());
        assert!(Rect::new(5, 3, 2, 7).is_empty());
        assert_eq!(Rect::new(5, 3, 2, 7).area(), 0);
        assert!(Rect::EMPTY.is_empty());
    }

    #[test]
    fn containment() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(0, 0));
        assert!(r.contains(9, 9));
        assert!(!r.contains(10, 0));
        assert!(!r.contains(0, -1));
        assert!(r.contains_rect(&Rect::new(2, 2, 8, 8)));
        assert!(r.contains_rect(&r));
        assert!(!r.contains_rect(&Rect::new(2, 2, 11, 8)));
        assert!(r.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn intersect_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 10, 10));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        let disjoint = Rect::new(20, 20, 30, 30);
        assert!(a.intersect(&disjoint).is_empty());
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.union(&a), a);
    }

    #[test]
    fn translate_moves_all_edges() {
        let r = Rect::new(1, 2, 3, 4).translate(10, -2);
        assert_eq!(r, Rect::new(11, 0, 13, 2));
    }

    #[test]
    fn pixels_iterates_row_major() {
        let r = Rect::new(1, 1, 3, 3);
        let pts: Vec<_> = r.pixels().collect();
        assert_eq!(pts, vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
        assert_eq!(Rect::EMPTY.pixels().count(), 0);
        // degenerate negative-extent rect yields nothing
        assert_eq!(Rect::new(3, 3, 1, 1).pixels().count(), 0);
    }

    #[test]
    fn of_image_covers_all() {
        let r = Rect::of_image(4, 3);
        assert_eq!(r.area(), 12);
        assert!(r.contains(3, 2));
        assert!(!r.contains(4, 2));
    }
}

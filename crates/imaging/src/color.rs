//! Color types and color-model conversions.
//!
//! The paper (§3.1) quantizes "the space of a color model such as RGB, HSV,
//! or Luv" to form histogram bins. This module provides the three models and
//! exact-enough conversions between them. [`Rgb`] is the storage type used by
//! [`crate::RasterImage`]; [`Hsv`] and [`Luv`] are derived views used by the
//! alternative quantizers in `mmdb-histogram`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An 8-bit-per-channel RGB color — the pixel type of every raster image in
/// the system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel, `0..=255`.
    pub r: u8,
    /// Green channel, `0..=255`.
    pub g: u8,
    /// Blue channel, `0..=255`.
    pub b: u8,
}

impl fmt::Debug for Rgb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl Rgb {
    /// Pure black (`#000000`).
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// Pure white (`#ffffff`).
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);
    /// Pure red (`#ff0000`).
    pub const RED: Rgb = Rgb::new(255, 0, 0);
    /// Pure green (`#00ff00`).
    pub const GREEN: Rgb = Rgb::new(0, 255, 0);
    /// Pure blue (`#0000ff`).
    pub const BLUE: Rgb = Rgb::new(0, 0, 255);

    /// Creates a color from its three channels.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a gray level (`v`,`v`,`v`).
    #[inline]
    pub const fn gray(v: u8) -> Self {
        Rgb::new(v, v, v)
    }

    /// Parses a `#rrggbb` or `rrggbb` hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix('#').unwrap_or(s);
        if s.len() != 6 || !s.is_ascii() {
            return None;
        }
        let r = u8::from_str_radix(&s[0..2], 16).ok()?;
        let g = u8::from_str_radix(&s[2..4], 16).ok()?;
        let b = u8::from_str_radix(&s[4..6], 16).ok()?;
        Some(Rgb::new(r, g, b))
    }

    /// Channels as an array, in `[r, g, b]` order.
    #[inline]
    pub const fn channels(self) -> [u8; 3] {
        [self.r, self.g, self.b]
    }

    /// Relative luminance using the Rec. 601 weighting, as an 8-bit value.
    /// Used by the PGM (grayscale) encoder.
    #[inline]
    pub fn luma(self) -> u8 {
        let y = 0.299 * self.r as f32 + 0.587 * self.g as f32 + 0.114 * self.b as f32;
        y.round().clamp(0.0, 255.0) as u8
    }

    /// Squared Euclidean distance in RGB space. Cheap proximity measure used
    /// by tests and the `Modify` tolerance matcher.
    #[inline]
    pub fn distance_sq(self, other: Rgb) -> u32 {
        let dr = self.r as i32 - other.r as i32;
        let dg = self.g as i32 - other.g as i32;
        let db = self.b as i32 - other.b as i32;
        (dr * dr + dg * dg + db * db) as u32
    }

    /// Converts to the HSV color model. Hue is in degrees `[0, 360)`,
    /// saturation and value in `[0, 1]`.
    pub fn to_hsv(self) -> Hsv {
        let r = self.r as f32 / 255.0;
        let g = self.g as f32 / 255.0;
        let b = self.b as f32 / 255.0;
        let max = r.max(g).max(b);
        let min = r.min(g).min(b);
        let delta = max - min;
        let h = if delta == 0.0 {
            0.0
        } else if max == r {
            60.0 * (((g - b) / delta).rem_euclid(6.0))
        } else if max == g {
            60.0 * ((b - r) / delta + 2.0)
        } else {
            60.0 * ((r - g) / delta + 4.0)
        };
        let s = if max == 0.0 { 0.0 } else { delta / max };
        Hsv { h, s, v: max }
    }

    /// Converts to CIE 1976 L\*u\*v\* under the D65 white point, going
    /// through linearized sRGB and XYZ.
    pub fn to_luv(self) -> Luv {
        fn linearize(c: u8) -> f64 {
            let c = c as f64 / 255.0;
            if c <= 0.04045 {
                c / 12.92
            } else {
                ((c + 0.055) / 1.055).powf(2.4)
            }
        }
        let r = linearize(self.r);
        let g = linearize(self.g);
        let b = linearize(self.b);
        // sRGB → XYZ (D65).
        let x = 0.4124564 * r + 0.3575761 * g + 0.1804375 * b;
        let y = 0.2126729 * r + 0.7151522 * g + 0.0721750 * b;
        let z = 0.0193339 * r + 0.1191920 * g + 0.9503041 * b;

        // D65 reference white.
        const XN: f64 = 0.95047;
        const YN: f64 = 1.0;
        const ZN: f64 = 1.08883;
        let denom = x + 15.0 * y + 3.0 * z;
        let (u_prime, v_prime) = if denom == 0.0 {
            (0.0, 0.0)
        } else {
            (4.0 * x / denom, 9.0 * y / denom)
        };
        let denom_n = XN + 15.0 * YN + 3.0 * ZN;
        let un_prime = 4.0 * XN / denom_n;
        let vn_prime = 9.0 * YN / denom_n;

        let y_ratio = y / YN;
        let l = if y_ratio > (6.0f64 / 29.0).powi(3) {
            116.0 * y_ratio.cbrt() - 16.0
        } else {
            (29.0f64 / 3.0).powi(3) * y_ratio
        };
        let u = 13.0 * l * (u_prime - un_prime);
        let v = 13.0 * l * (v_prime - vn_prime);
        Luv { l, u, v }
    }
}

impl From<[u8; 3]> for Rgb {
    fn from(c: [u8; 3]) -> Self {
        Rgb::new(c[0], c[1], c[2])
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(c: Rgb) -> Self {
        c.channels()
    }
}

/// A color in the HSV (hue/saturation/value) model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hsv {
    /// Hue in degrees, `[0, 360)`.
    pub h: f32,
    /// Saturation, `[0, 1]`.
    pub s: f32,
    /// Value (brightness), `[0, 1]`.
    pub v: f32,
}

impl Hsv {
    /// Converts back to 8-bit RGB.
    pub fn to_rgb(self) -> Rgb {
        let c = self.v * self.s;
        let h_prime = (self.h.rem_euclid(360.0)) / 60.0;
        let x = c * (1.0 - (h_prime % 2.0 - 1.0).abs());
        let (r1, g1, b1) = match h_prime as u32 {
            0 => (c, x, 0.0),
            1 => (x, c, 0.0),
            2 => (0.0, c, x),
            3 => (0.0, x, c),
            4 => (x, 0.0, c),
            _ => (c, 0.0, x),
        };
        let m = self.v - c;
        let to8 = |f: f32| ((f + m) * 255.0).round().clamp(0.0, 255.0) as u8;
        Rgb::new(to8(r1), to8(g1), to8(b1))
    }
}

/// A color in the CIE 1976 L\*u\*v\* model (D65 white point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Luv {
    /// Lightness, `[0, 100]`.
    pub l: f64,
    /// u\* chromaticity.
    pub u: f64,
    /// v\* chromaticity.
    pub v: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let c = Rgb::from_hex("#1a2b3c").unwrap();
        assert_eq!(c, Rgb::new(0x1a, 0x2b, 0x3c));
        assert_eq!(format!("{c:?}"), "#1a2b3c");
        assert_eq!(Rgb::from_hex("1a2b3c"), Some(c));
    }

    #[test]
    fn hex_rejects_malformed() {
        assert_eq!(Rgb::from_hex("#12345"), None);
        assert_eq!(Rgb::from_hex("#1234567"), None);
        assert_eq!(Rgb::from_hex("#zzzzzz"), None);
        assert_eq!(Rgb::from_hex(""), None);
    }

    #[test]
    fn hsv_of_primaries() {
        let red = Rgb::RED.to_hsv();
        assert!((red.h - 0.0).abs() < 1e-4 && (red.s - 1.0).abs() < 1e-4);
        let green = Rgb::GREEN.to_hsv();
        assert!((green.h - 120.0).abs() < 1e-3);
        let blue = Rgb::BLUE.to_hsv();
        assert!((blue.h - 240.0).abs() < 1e-3);
        let white = Rgb::WHITE.to_hsv();
        assert!(white.s == 0.0 && (white.v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hsv_rgb_roundtrip_exhaustive_grid() {
        // Round-trip a coarse grid through HSV and back; 8-bit quantization
        // permits at most ±1 per channel of drift.
        for r in (0..=255u16).step_by(17) {
            for g in (0..=255u16).step_by(17) {
                for b in (0..=255u16).step_by(17) {
                    let c = Rgb::new(r as u8, g as u8, b as u8);
                    let back = c.to_hsv().to_rgb();
                    assert!(
                        (c.r as i16 - back.r as i16).abs() <= 1
                            && (c.g as i16 - back.g as i16).abs() <= 1
                            && (c.b as i16 - back.b as i16).abs() <= 1,
                        "{c:?} -> {back:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn luv_reference_points() {
        let white = Rgb::WHITE.to_luv();
        assert!((white.l - 100.0).abs() < 0.1, "white L* = {}", white.l);
        assert!(white.u.abs() < 0.5 && white.v.abs() < 0.5);
        let black = Rgb::BLACK.to_luv();
        assert!(black.l.abs() < 1e-6);
    }

    #[test]
    fn luv_red_is_far_from_green() {
        let red = Rgb::RED.to_luv();
        let green = Rgb::GREEN.to_luv();
        let d = ((red.l - green.l).powi(2) + (red.u - green.u).powi(2) + (red.v - green.v).powi(2))
            .sqrt();
        assert!(d > 100.0, "Luv distance red-green = {d}");
    }

    #[test]
    fn luma_ordering() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert_eq!(Rgb::WHITE.luma(), 255);
        assert!(Rgb::GREEN.luma() > Rgb::RED.luma());
        assert!(Rgb::RED.luma() > Rgb::BLUE.luma());
    }

    #[test]
    fn distance_sq_symmetric_and_zero_on_equal() {
        let a = Rgb::new(10, 20, 30);
        let b = Rgb::new(13, 16, 35);
        assert_eq!(a.distance_sq(b), b.distance_sq(a));
        assert_eq!(a.distance_sq(a), 0);
        assert_eq!(a.distance_sq(b), 9 + 16 + 25);
    }

    #[test]
    fn array_conversions() {
        let c: Rgb = [1u8, 2, 3].into();
        assert_eq!(c, Rgb::new(1, 2, 3));
        let arr: [u8; 3] = c.into();
        assert_eq!(arr, [1, 2, 3]);
    }
}

//! PPM / PGM codecs.
//!
//! The paper's prototype used "utilities from the pbmplus package ... to
//! convert binary images between the text-based ppm format and more commonly
//! used formats". We implement the netpbm formats natively:
//!
//! * `P3` — text PPM (what the paper's Perl code consumed),
//! * `P6` — binary PPM (the conventional on-disk format in our blob store),
//! * `P2` / `P5` — text / binary PGM (grayscale export, via [`Rgb::luma`]).
//!
//! The decoder accepts `#` comments anywhere whitespace is allowed in the
//! header, any maxval in `1..=255`, and is strict about truncated bodies.

use crate::color::Rgb;
use crate::error::ImagingError;
use crate::raster::RasterImage;
use crate::Result;
use std::io::{Read, Write};
use std::path::Path;

/// Netpbm sub-format selector for the encoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PnmFormat {
    /// `P2` — plain (ASCII) grayscale.
    PlainGray,
    /// `P3` — plain (ASCII) RGB.
    PlainRgb,
    /// `P5` — binary grayscale.
    RawGray,
    /// `P6` — binary RGB.
    RawRgb,
}

impl PnmFormat {
    fn magic(self) -> &'static str {
        match self {
            PnmFormat::PlainGray => "P2",
            PnmFormat::PlainRgb => "P3",
            PnmFormat::RawGray => "P5",
            PnmFormat::RawRgb => "P6",
        }
    }
}

/// Encodes `image` in the requested netpbm format.
pub fn encode(image: &RasterImage, format: PnmFormat) -> Vec<u8> {
    let mut out = Vec::with_capacity(image.pixels().len() * 3 + 32);
    // Header: magic, comment, dimensions, maxval.
    let _ = write!(
        out,
        "{}\n# mmdb-imaging\n{} {}\n255\n",
        format.magic(),
        image.width(),
        image.height()
    );
    match format {
        PnmFormat::RawRgb => {
            for p in image.pixels() {
                out.extend_from_slice(&p.channels());
            }
        }
        PnmFormat::RawGray => {
            for p in image.pixels() {
                out.push(p.luma());
            }
        }
        PnmFormat::PlainRgb => {
            for (i, p) in image.pixels().iter().enumerate() {
                let sep = if (i + 1) % 4 == 0 { '\n' } else { ' ' };
                let _ = write!(out, "{} {} {}{}", p.r, p.g, p.b, sep);
            }
            out.push(b'\n');
        }
        PnmFormat::PlainGray => {
            for (i, p) in image.pixels().iter().enumerate() {
                let sep = if (i + 1) % 12 == 0 { '\n' } else { ' ' };
                let _ = write!(out, "{}{}", p.luma(), sep);
            }
            out.push(b'\n');
        }
    }
    out
}

/// Decodes any of `P2`/`P3`/`P5`/`P6`. Grayscale inputs are promoted to RGB.
pub fn decode(bytes: &[u8]) -> Result<RasterImage> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.token()?;
    let channels = match magic.as_str() {
        "P2" | "P5" => 1usize,
        "P3" | "P6" => 3usize,
        other => {
            return Err(ImagingError::Codec(format!(
                "unsupported netpbm magic {other:?}"
            )))
        }
    };
    let plain = magic == "P2" || magic == "P3";
    let width: u32 = cursor.number()?;
    let height: u32 = cursor.number()?;
    let maxval: u32 = cursor.number()?;
    if width == 0 || height == 0 {
        return Err(ImagingError::Codec(format!(
            "degenerate dimensions {width}x{height}"
        )));
    }
    if maxval == 0 || maxval > 255 {
        return Err(ImagingError::Codec(format!(
            "unsupported maxval {maxval} (expected 1..=255)"
        )));
    }
    let n = width as usize * height as usize;
    let scale = |v: u32| -> u8 { ((v.min(maxval) * 255 + maxval / 2) / maxval) as u8 };
    let mut pixels = Vec::with_capacity(n);
    if plain {
        for _ in 0..n {
            if channels == 3 {
                let r = scale(cursor.number()?);
                let g = scale(cursor.number()?);
                let b = scale(cursor.number()?);
                pixels.push(Rgb::new(r, g, b));
            } else {
                let v = scale(cursor.number()?);
                pixels.push(Rgb::gray(v));
            }
        }
    } else {
        // Exactly one whitespace byte separates the header from the body.
        cursor.skip_single_whitespace()?;
        let need = n * channels;
        let body = cursor.remaining();
        if body.len() < need {
            return Err(ImagingError::Codec(format!(
                "truncated raster body: need {need} bytes, have {}",
                body.len()
            )));
        }
        if channels == 3 {
            for chunk in body[..need].chunks_exact(3) {
                pixels.push(Rgb::new(
                    scale(chunk[0] as u32),
                    scale(chunk[1] as u32),
                    scale(chunk[2] as u32),
                ));
            }
        } else {
            for &v in &body[..need] {
                pixels.push(Rgb::gray(scale(v as u32)));
            }
        }
    }
    RasterImage::from_pixels(width, height, pixels)
}

/// Writes `image` to `path` in the given format.
pub fn write_file(image: &RasterImage, path: &Path, format: PnmFormat) -> Result<()> {
    std::fs::write(path, encode(image, format))?;
    Ok(())
}

/// Reads a netpbm file from `path`.
pub fn read_file(path: &Path) -> Result<RasterImage> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Header/tokens scanner over the raw byte buffer. Netpbm headers are ASCII;
/// comments run from `#` to end of line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws_and_comments(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn token(&mut self) -> Result<String> {
        self.skip_ws_and_comments();
        let start = self.pos;
        while self.pos < self.bytes.len() && !self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ImagingError::Codec("unexpected end of header".into()));
        }
        String::from_utf8(self.bytes[start..self.pos].to_vec())
            .map_err(|_| ImagingError::Codec("non-ASCII header token".into()))
    }

    fn number(&mut self) -> Result<u32> {
        let tok = self.token()?;
        tok.parse::<u32>()
            .map_err(|_| ImagingError::Codec(format!("expected integer, found {tok:?}")))
    }

    fn skip_single_whitespace(&mut self) -> Result<()> {
        if self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
            Ok(())
        } else {
            Err(ImagingError::Codec(
                "missing whitespace before binary raster body".into(),
            ))
        }
    }

    fn remaining(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> RasterImage {
        RasterImage::from_fn(w, h, |x, y| {
            Rgb::new(
                (x * 7 % 256) as u8,
                (y * 13 % 256) as u8,
                ((x + y) % 256) as u8,
            )
        })
        .unwrap()
    }

    #[test]
    fn p6_roundtrip() {
        let img = gradient(17, 9);
        let bytes = encode(&img, PnmFormat::RawRgb);
        let back = decode(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn p3_roundtrip() {
        let img = gradient(5, 4);
        let bytes = encode(&img, PnmFormat::PlainRgb);
        let back = decode(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn p5_and_p2_decode_as_gray() {
        let img = gradient(6, 3);
        for fmt in [PnmFormat::RawGray, PnmFormat::PlainGray] {
            let back = decode(&encode(&img, fmt)).unwrap();
            assert_eq!(back.width(), 6);
            assert_eq!(back.height(), 3);
            for (x, y, c) in back.enumerate_pixels() {
                let expect = img.get(x, y).luma();
                assert_eq!(c, Rgb::gray(expect));
            }
        }
    }

    #[test]
    fn comments_anywhere_in_header() {
        let src = b"P3 # hello\n# a comment line\n 2 # width done\n1\n255\n1 2 3  4 5 6\n";
        let img = decode(src).unwrap();
        assert_eq!(img.get(0, 0), Rgb::new(1, 2, 3));
        assert_eq!(img.get(1, 0), Rgb::new(4, 5, 6));
    }

    #[test]
    fn maxval_rescaling() {
        // maxval 15: value 15 must map to 255, 7 to ~119.
        let src = b"P3\n1 1\n15\n15 7 0\n";
        let img = decode(src).unwrap();
        let p = img.get(0, 0);
        assert_eq!(p.r, 255);
        assert_eq!(p.b, 0);
        assert!((p.g as i32 - 119).abs() <= 1, "g = {}", p.g);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(decode(b"P7\n1 1\n255\n...").is_err());
        assert!(decode(b"P6\n2 2\n255\n\x00\x00\x00").is_err());
        assert!(decode(b"P3\n2 2\n255\n1 2 3").is_err());
        assert!(decode(b"P6\n0 4\n255\n").is_err());
        assert!(decode(b"P6\n2 2\n999\n").is_err());
        assert!(decode(b"").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mmdb_imaging_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.ppm");
        let img = gradient(8, 8);
        write_file(&img, &path, PnmFormat::RawRgb).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(img, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_body_may_start_with_hash_byte() {
        // A '#' as the first *body* byte must not be eaten as a comment.
        let mut bytes = b"P6\n1 1\n255\n".to_vec();
        bytes.extend_from_slice(&[b'#', 10, 20]);
        let img = decode(&bytes).unwrap();
        assert_eq!(img.get(0, 0), Rgb::new(b'#', 10, 20));
    }
}

//! The owned RGB raster type.

use crate::color::Rgb;
use crate::error::ImagingError;
use crate::geometry::Rect;
use crate::Result;

/// An owned, row-major, 8-bit RGB raster image.
///
/// This is the *instantiated* form of every image in the MMDBMS — both base
/// images stored conventionally and edited images after their operation
/// sequence has been executed. Pixels are stored in a flat `Vec<Rgb>` of
/// length `width * height`; row `y` occupies indices
/// `y*width .. (y+1)*width`.
#[derive(Clone, PartialEq, Eq)]
pub struct RasterImage {
    width: u32,
    height: u32,
    pixels: Vec<Rgb>,
}

impl std::fmt::Debug for RasterImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RasterImage")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish()
    }
}

impl RasterImage {
    /// Creates an image filled with a single color.
    ///
    /// # Errors
    /// Returns [`ImagingError::InvalidDimensions`] when either dimension is
    /// zero or `width * height` overflows the addressable size.
    pub fn filled(width: u32, height: u32, color: Rgb) -> Result<Self> {
        let len = Self::checked_len(width, height)?;
        Ok(RasterImage {
            width,
            height,
            pixels: vec![color; len],
        })
    }

    /// Creates an image from an existing pixel buffer (row-major).
    ///
    /// # Errors
    /// Returns [`ImagingError::InvalidDimensions`] when the buffer length does
    /// not equal `width * height` or a dimension is zero.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<Rgb>) -> Result<Self> {
        let len = Self::checked_len(width, height)?;
        if pixels.len() != len {
            return Err(ImagingError::InvalidDimensions {
                width,
                height,
                buffer_len: Some(pixels.len()),
            });
        }
        Ok(RasterImage {
            width,
            height,
            pixels,
        })
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> Rgb) -> Result<Self> {
        let len = Self::checked_len(width, height)?;
        let mut pixels = Vec::with_capacity(len);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        Ok(RasterImage {
            width,
            height,
            pixels,
        })
    }

    fn checked_len(width: u32, height: u32) -> Result<usize> {
        if width == 0 || height == 0 {
            return Err(ImagingError::InvalidDimensions {
                width,
                height,
                buffer_len: None,
            });
        }
        (width as usize)
            .checked_mul(height as usize)
            .ok_or(ImagingError::InvalidDimensions {
                width,
                height,
                buffer_len: None,
            })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of pixels (`width * height`) — the paper's `imagesize`.
    #[inline]
    pub fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// The rectangle covering the whole image.
    #[inline]
    pub fn bounds(&self) -> Rect {
        Rect::of_image(self.width, self.height)
    }

    /// Flat pixel slice, row-major.
    #[inline]
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Mutable flat pixel slice, row-major.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [Rgb] {
        &mut self.pixels
    }

    /// Consumes the image, returning its pixel buffer.
    #[inline]
    pub fn into_pixels(self) -> Vec<Rgb> {
        self.pixels
    }

    /// Unchecked-by-construction pixel read; panics if out of bounds (debug
    /// builds assert, release builds bounds-check through the slice).
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y as usize * self.width as usize + x as usize]
    }

    /// Checked pixel read.
    ///
    /// # Errors
    /// Returns [`ImagingError::OutOfBounds`] for coordinates outside the
    /// image.
    pub fn try_get(&self, x: u32, y: u32) -> Result<Rgb> {
        if x >= self.width || y >= self.height {
            return Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(self.get(x, y))
    }

    /// Pixel write; panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, color: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y as usize * self.width as usize + x as usize] = color;
    }

    /// Signed-coordinate read that returns `None` outside the image. Used by
    /// geometry-transforming operations whose source coordinates may fall
    /// outside bounds.
    #[inline]
    pub fn get_signed(&self, x: i64, y: i64) -> Option<Rgb> {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            None
        } else {
            Some(self.get(x as u32, y as u32))
        }
    }

    /// One row of pixels.
    #[inline]
    pub fn row(&self, y: u32) -> &[Rgb] {
        let w = self.width as usize;
        &self.pixels[y as usize * w..(y as usize + 1) * w]
    }

    /// Iterates `(x, y, color)` over all pixels in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (u32, u32, Rgb)> + '_ {
        let w = self.width;
        self.pixels
            .iter()
            .enumerate()
            .map(move |(i, &c)| ((i as u32) % w, (i as u32) / w, c))
    }

    /// Extracts a copy of the pixels inside `rect` (clipped to the image) as
    /// a new image. Returns `None` when the clipped region is empty.
    pub fn crop(&self, rect: &Rect) -> Option<RasterImage> {
        let clipped = rect.intersect(&self.bounds());
        if clipped.is_empty() {
            return None;
        }
        let w = clipped.width() as u32;
        let h = clipped.height() as u32;
        let mut pixels = Vec::with_capacity(w as usize * h as usize);
        for y in clipped.y0..clipped.y1 {
            let row = self.row(y as u32);
            pixels.extend_from_slice(&row[clipped.x0 as usize..clipped.x1 as usize]);
        }
        Some(RasterImage {
            width: w,
            height: h,
            pixels,
        })
    }

    /// Counts pixels equal to `color`.
    pub fn count_color(&self, color: Rgb) -> u64 {
        self.pixels.iter().filter(|&&c| c == color).count() as u64
    }

    /// Applies `f` to every pixel in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(Rgb) -> Rgb) {
        for p in &mut self.pixels {
            *p = f(*p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_accessors() {
        let img = RasterImage::filled(4, 3, Rgb::RED).unwrap();
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.pixel_count(), 12);
        assert_eq!(img.get(3, 2), Rgb::RED);
        assert_eq!(img.count_color(Rgb::RED), 12);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(RasterImage::filled(0, 5, Rgb::BLACK).is_err());
        assert!(RasterImage::filled(5, 0, Rgb::BLACK).is_err());
    }

    #[test]
    fn from_pixels_validates_length() {
        assert!(RasterImage::from_pixels(2, 2, vec![Rgb::BLACK; 3]).is_err());
        assert!(RasterImage::from_pixels(2, 2, vec![Rgb::BLACK; 4]).is_ok());
    }

    #[test]
    fn from_fn_row_major() {
        let img = RasterImage::from_fn(3, 2, |x, y| Rgb::new(x as u8, y as u8, 0)).unwrap();
        assert_eq!(img.get(2, 1), Rgb::new(2, 1, 0));
        assert_eq!(img.pixels()[5], Rgb::new(2, 1, 0));
    }

    #[test]
    fn try_get_bounds() {
        let img = RasterImage::filled(2, 2, Rgb::BLACK).unwrap();
        assert!(img.try_get(1, 1).is_ok());
        assert!(img.try_get(2, 0).is_err());
        assert!(img.try_get(0, 2).is_err());
    }

    #[test]
    fn get_signed_outside_is_none() {
        let img = RasterImage::filled(2, 2, Rgb::WHITE).unwrap();
        assert_eq!(img.get_signed(-1, 0), None);
        assert_eq!(img.get_signed(0, 2), None);
        assert_eq!(img.get_signed(1, 1), Some(Rgb::WHITE));
    }

    #[test]
    fn set_then_get() {
        let mut img = RasterImage::filled(3, 3, Rgb::BLACK).unwrap();
        img.set(1, 2, Rgb::GREEN);
        assert_eq!(img.get(1, 2), Rgb::GREEN);
        assert_eq!(img.count_color(Rgb::GREEN), 1);
    }

    #[test]
    fn crop_clips_to_bounds() {
        let img = RasterImage::from_fn(4, 4, |x, y| Rgb::new(x as u8, y as u8, 0)).unwrap();
        let cropped = img.crop(&Rect::new(2, 2, 10, 10)).unwrap();
        assert_eq!(cropped.width(), 2);
        assert_eq!(cropped.height(), 2);
        assert_eq!(cropped.get(0, 0), Rgb::new(2, 2, 0));
        assert!(img.crop(&Rect::new(5, 5, 9, 9)).is_none());
    }

    #[test]
    fn enumerate_pixels_coordinates() {
        let img = RasterImage::from_fn(2, 2, |x, y| Rgb::new(x as u8, y as u8, 9)).unwrap();
        for (x, y, c) in img.enumerate_pixels() {
            assert_eq!(c, Rgb::new(x as u8, y as u8, 9));
        }
        assert_eq!(img.enumerate_pixels().count(), 4);
    }

    #[test]
    fn map_in_place_applies_everywhere() {
        let mut img = RasterImage::filled(2, 2, Rgb::new(10, 10, 10)).unwrap();
        img.map_in_place(|c| Rgb::new(c.r + 1, c.g, c.b));
        assert_eq!(img.count_color(Rgb::new(11, 10, 10)), 4);
    }

    #[test]
    fn row_slices() {
        let img = RasterImage::from_fn(3, 2, |x, y| Rgb::new(x as u8, y as u8, 0)).unwrap();
        assert_eq!(img.row(1)[0], Rgb::new(0, 1, 0));
        assert_eq!(img.row(0).len(), 3);
    }
}

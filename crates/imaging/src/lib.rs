#![warn(missing_docs)]

//! # mmdb-imaging
//!
//! Raster-image substrate for the edit-sequence MMDBMS reproduction.
//!
//! The paper's prototype manipulated text-based PPM images converted with the
//! `pbmplus` toolkit; this crate provides the equivalent foundation in pure
//! Rust:
//!
//! * [`Rgb`] — 8-bit-per-channel color with conversions to HSV and CIE Luv
//!   (the color models named in §3.1 of the paper),
//! * [`RasterImage`] — an owned, row-major RGB raster,
//! * [`Rect`]/[`Point`] — integer geometry used by defined regions and the
//!   drawing primitives,
//! * [`ppm`] — PPM/PGM codecs (text `P2`/`P3` and binary `P5`/`P6`),
//! * [`draw`] — filled-shape primitives used by the synthetic flag and helmet
//!   generators.
//!
//! Everything here is deterministic and allocation-conscious: hot paths
//! (pixel loops, histogram extraction in the sibling crates) iterate over the
//! flat pixel slice rather than doing per-pixel bounds-checked 2-D indexing.

pub mod color;
pub mod draw;
pub mod error;
pub mod geometry;
pub mod ppm;
pub mod raster;

pub use color::{Hsv, Luv, Rgb};
pub use error::ImagingError;
pub use geometry::{Point, Rect};
pub use raster::RasterImage;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ImagingError>;

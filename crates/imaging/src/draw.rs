//! Filled-shape drawing primitives.
//!
//! These exist to let `mmdb-datagen` synthesize the flag and helmet
//! collections the paper evaluated on (its originals came from 2006-era web
//! sites that no longer exist). Everything draws with hard edges — no
//! anti-aliasing — because the retrieval algorithms reason about exact color
//! populations and the synthetic datasets are meant to have crisp color
//! statistics like flags and logos do.

use crate::color::Rgb;
use crate::geometry::Rect;
use crate::raster::RasterImage;

/// Fills `rect` (clipped to the image) with `color`.
pub fn fill_rect(img: &mut RasterImage, rect: &Rect, color: Rgb) {
    let clipped = rect.intersect(&img.bounds());
    if clipped.is_empty() {
        return;
    }
    let w = img.width() as usize;
    let (x0, x1) = (clipped.x0 as usize, clipped.x1 as usize);
    for y in clipped.y0 as usize..clipped.y1 as usize {
        let row = &mut img.pixels_mut()[y * w + x0..y * w + x1];
        row.fill(color);
    }
}

/// Fills the axis-aligned ellipse inscribed in `rect` with `color`.
pub fn fill_ellipse(img: &mut RasterImage, rect: &Rect, color: Rgb) {
    if rect.is_empty() {
        return;
    }
    let cx = (rect.x0 + rect.x1 - 1) as f64 / 2.0;
    let cy = (rect.y0 + rect.y1 - 1) as f64 / 2.0;
    let rx = rect.width() as f64 / 2.0;
    let ry = rect.height() as f64 / 2.0;
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let clipped = rect.intersect(&img.bounds());
    for y in clipped.y0..clipped.y1 {
        let dy = (y as f64 - cy) / ry;
        let span = 1.0 - dy * dy;
        if span < 0.0 {
            continue;
        }
        let half = span.sqrt() * rx;
        let xa = (cx - half).ceil() as i64;
        let xb = (cx + half).floor() as i64;
        let row = Rect::new(xa, y, xb + 1, y + 1);
        fill_rect(img, &row, color);
    }
}

/// Fills the circle of radius `r` centered at `(cx, cy)`.
pub fn fill_circle(img: &mut RasterImage, cx: i64, cy: i64, r: i64, color: Rgb) {
    fill_ellipse(
        img,
        &Rect::new(cx - r, cy - r, cx + r + 1, cy + r + 1),
        color,
    );
}

/// Fills the triangle with vertices `a`, `b`, `c` using a scanline walk.
pub fn fill_triangle(
    img: &mut RasterImage,
    a: (i64, i64),
    b: (i64, i64),
    c: (i64, i64),
    color: Rgb,
) {
    fill_polygon(img, &[a, b, c], color);
}

/// Fills an arbitrary simple polygon via even-odd scanline filling.
pub fn fill_polygon(img: &mut RasterImage, vertices: &[(i64, i64)], color: Rgb) {
    if vertices.len() < 3 {
        return;
    }
    let y_min = vertices.iter().map(|v| v.1).min().unwrap().max(0);
    let y_max = vertices
        .iter()
        .map(|v| v.1)
        .max()
        .unwrap()
        .min(img.height() as i64 - 1);
    let mut xs: Vec<f64> = Vec::with_capacity(vertices.len());
    for y in y_min..=y_max {
        xs.clear();
        let yc = y as f64 + 0.5;
        let n = vertices.len();
        for i in 0..n {
            let (x1, y1) = (vertices[i].0 as f64, vertices[i].1 as f64);
            let (x2, y2) = (
                vertices[(i + 1) % n].0 as f64,
                vertices[(i + 1) % n].1 as f64,
            );
            if (y1 <= yc && y2 > yc) || (y2 <= yc && y1 > yc) {
                xs.push(x1 + (yc - y1) / (y2 - y1) * (x2 - x1));
            }
        }
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        for pair in xs.chunks_exact(2) {
            let xa = pair[0].ceil() as i64;
            let xb = pair[1].floor() as i64;
            if xa <= xb {
                fill_rect(img, &Rect::new(xa, y, xb + 1, y + 1), color);
            }
        }
    }
}

/// Draws a 1-pixel-wide line with Bresenham's algorithm.
pub fn draw_line(img: &mut RasterImage, a: (i64, i64), b: (i64, i64), color: Rgb) {
    let (mut x0, mut y0) = a;
    let (x1, y1) = b;
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        if x0 >= 0 && y0 >= 0 && x0 < img.width() as i64 && y0 < img.height() as i64 {
            img.set(x0 as u32, y0 as u32, color);
        }
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Draws a thick line by stamping filled circles along a Bresenham walk.
pub fn draw_thick_line(
    img: &mut RasterImage,
    a: (i64, i64),
    b: (i64, i64),
    half_width: i64,
    color: Rgb,
) {
    let (mut x0, mut y0) = a;
    let (x1, y1) = b;
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        fill_circle(img, x0, y0, half_width, color);
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas(w: u32, h: u32) -> RasterImage {
        RasterImage::filled(w, h, Rgb::BLACK).unwrap()
    }

    #[test]
    fn fill_rect_exact_area() {
        let mut img = canvas(10, 10);
        fill_rect(&mut img, &Rect::new(2, 3, 6, 8), Rgb::RED);
        assert_eq!(img.count_color(Rgb::RED), 4 * 5);
        assert_eq!(img.get(2, 3), Rgb::RED);
        assert_eq!(img.get(5, 7), Rgb::RED);
        assert_eq!(img.get(6, 3), Rgb::BLACK);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = canvas(4, 4);
        fill_rect(&mut img, &Rect::new(-5, -5, 2, 2), Rgb::GREEN);
        assert_eq!(img.count_color(Rgb::GREEN), 4);
        fill_rect(&mut img, &Rect::new(10, 10, 20, 20), Rgb::BLUE);
        assert_eq!(img.count_color(Rgb::BLUE), 0);
    }

    #[test]
    fn circle_is_symmetric_and_reasonable() {
        let mut img = canvas(41, 41);
        fill_circle(&mut img, 20, 20, 10, Rgb::WHITE);
        let n = img.count_color(Rgb::WHITE) as f64;
        let expected = std::f64::consts::PI * 10.0 * 10.0;
        assert!((n - expected).abs() / expected < 0.15, "area {n}");
        // 4-fold symmetry
        for (dx, dy) in [(10, 0), (0, 10), (-10, 0), (0, -10)] {
            assert_eq!(
                img.get((20 + dx) as u32, (20 + dy) as u32),
                Rgb::WHITE,
                "({dx},{dy})"
            );
        }
        assert_eq!(img.get(20 + 11, 20), Rgb::BLACK);
    }

    #[test]
    fn ellipse_clipped_at_border() {
        let mut img = canvas(10, 10);
        fill_ellipse(&mut img, &Rect::new(-10, -10, 10, 10), Rgb::RED);
        assert!(img.count_color(Rgb::RED) > 0);
    }

    #[test]
    fn triangle_covers_half_square() {
        let mut img = canvas(100, 100);
        fill_triangle(&mut img, (0, 0), (99, 0), (0, 99), Rgb::BLUE);
        let n = img.count_color(Rgb::BLUE) as f64;
        assert!((n - 5000.0).abs() / 5000.0 < 0.05, "area {n}");
    }

    #[test]
    fn polygon_rectangle_matches_fill_rect() {
        let mut a = canvas(20, 20);
        let mut b = canvas(20, 20);
        fill_polygon(&mut a, &[(3, 4), (15, 4), (15, 12), (3, 12)], Rgb::GREEN);
        fill_rect(&mut b, &Rect::new(3, 4, 15, 12), Rgb::GREEN);
        // Scanline sampling at y+0.5 makes the polygon cover rows 4..12 and
        // columns 3..=15; allow the polygon to differ only on its right/bottom
        // closed edge.
        let pa = a.count_color(Rgb::GREEN);
        let pb = b.count_color(Rgb::GREEN);
        assert!(pa >= pb, "{pa} vs {pb}");
        assert!(pa <= pb + 8 + 13, "{pa} vs {pb}");
    }

    #[test]
    fn degenerate_polygon_draws_nothing() {
        let mut img = canvas(10, 10);
        fill_polygon(&mut img, &[(1, 1), (5, 5)], Rgb::RED);
        assert_eq!(img.count_color(Rgb::RED), 0);
    }

    #[test]
    fn line_endpoints_painted() {
        let mut img = canvas(10, 10);
        draw_line(&mut img, (0, 0), (9, 9), Rgb::WHITE);
        assert_eq!(img.get(0, 0), Rgb::WHITE);
        assert_eq!(img.get(9, 9), Rgb::WHITE);
        assert_eq!(img.count_color(Rgb::WHITE), 10);
    }

    #[test]
    fn line_clips_outside() {
        let mut img = canvas(5, 5);
        draw_line(&mut img, (-3, 2), (8, 2), Rgb::RED);
        assert_eq!(img.count_color(Rgb::RED), 5);
    }

    #[test]
    fn thick_line_wider_than_thin() {
        let mut thin = canvas(30, 30);
        let mut thick = canvas(30, 30);
        draw_line(&mut thin, (5, 15), (25, 15), Rgb::RED);
        draw_thick_line(&mut thick, (5, 15), (25, 15), 3, Rgb::RED);
        assert!(thick.count_color(Rgb::RED) > 3 * thin.count_color(Rgb::RED));
    }
}

//! Error type for the imaging substrate.

use std::fmt;

/// Errors produced while constructing, decoding or encoding raster images.
#[derive(Debug)]
pub enum ImagingError {
    /// Width or height of zero, or a pixel buffer whose length does not match
    /// `width * height`.
    InvalidDimensions {
        /// Requested width.
        width: u32,
        /// Requested height.
        height: u32,
        /// Length of the supplied pixel buffer, if any.
        buffer_len: Option<usize>,
    },
    /// A pixel coordinate outside the image bounds was addressed through a
    /// checked accessor.
    OutOfBounds {
        /// X coordinate (column).
        x: u32,
        /// Y coordinate (row).
        y: u32,
        /// Image width.
        width: u32,
        /// Image height.
        height: u32,
    },
    /// The PPM/PGM decoder encountered a malformed header or body.
    Codec(String),
    /// An underlying I/O failure while reading or writing an image.
    Io(std::io::Error),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::InvalidDimensions {
                width,
                height,
                buffer_len,
            } => match buffer_len {
                Some(len) => write!(
                    f,
                    "pixel buffer of length {len} does not match {width}x{height} image"
                ),
                None => write!(f, "invalid image dimensions {width}x{height}"),
            },
            ImagingError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "pixel ({x},{y}) out of bounds for {width}x{height} image"
            ),
            ImagingError::Codec(msg) => write!(f, "image codec error: {msg}"),
            ImagingError::Io(err) => write!(f, "image I/O error: {err}"),
        }
    }
}

impl std::error::Error for ImagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImagingError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImagingError {
    fn from(err: std::io::Error) -> Self {
        ImagingError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_dimensions_with_buffer() {
        let err = ImagingError::InvalidDimensions {
            width: 4,
            height: 4,
            buffer_len: Some(3),
        };
        assert!(err.to_string().contains("length 3"));
        assert!(err.to_string().contains("4x4"));
    }

    #[test]
    fn display_invalid_dimensions_without_buffer() {
        let err = ImagingError::InvalidDimensions {
            width: 0,
            height: 7,
            buffer_len: None,
        };
        assert_eq!(err.to_string(), "invalid image dimensions 0x7");
    }

    #[test]
    fn display_out_of_bounds() {
        let err = ImagingError::OutOfBounds {
            x: 9,
            y: 1,
            width: 8,
            height: 8,
        };
        assert!(err.to_string().contains("(9,1)"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let err: ImagingError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(err.source().is_some());
    }
}

//! Property tests for the imaging substrate: codec round-trips, geometry
//! algebra, and drawing-primitive conservation laws.

use mmdb_imaging::ppm::{decode, encode, PnmFormat};
use mmdb_imaging::{draw, RasterImage, Rect, Rgb};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = RasterImage> {
    (1u32..24, 1u32..24, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut s = seed | 1;
        RasterImage::from_fn(w, h, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Rgb::new((s >> 16) as u8, (s >> 32) as u8, (s >> 48) as u8)
        })
        .unwrap()
    })
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-30i64..30, -30i64..30, -30i64..30, -30i64..30)
        .prop_map(|(x0, y0, x1, y1)| Rect::new(x0, y0, x1, y1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// P6 and P3 round-trip any image bit-exactly.
    #[test]
    fn ppm_roundtrips(img in arb_image()) {
        for fmt in [PnmFormat::RawRgb, PnmFormat::PlainRgb] {
            let back = decode(&encode(&img, fmt)).expect("decodes");
            prop_assert_eq!(&back, &img);
        }
        // Gray formats preserve dimensions and luma.
        for fmt in [PnmFormat::RawGray, PnmFormat::PlainGray] {
            let back = decode(&encode(&img, fmt)).expect("decodes");
            prop_assert_eq!((back.width(), back.height()), (img.width(), img.height()));
            for (x, y, c) in back.enumerate_pixels() {
                prop_assert_eq!(c, Rgb::gray(img.get(x, y).luma()));
            }
        }
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn ppm_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode(&bytes);
    }

    /// Rect algebra: intersection is the largest box inside both; union the
    /// smallest covering both; areas behave.
    #[test]
    fn rect_algebra(a in arb_rect(), b in arb_rect()) {
        let i = a.intersect(&b);
        prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        prop_assert!(i.area() <= a.area().min(b.area()));
        prop_assert!(u.area() + 1e-9 as u64 >= a.area().max(b.area()));
        // Pixel-level agreement between contains() and intersect().
        if !i.is_empty() {
            for (x, y) in i.pixels().take(16) {
                prop_assert!(a.contains(x, y) && b.contains(x, y));
            }
        }
        // pixels() yields exactly area() coordinates.
        prop_assert_eq!(a.pixels().count() as u64, a.area());
    }

    /// fill_rect paints exactly the clipped area, and nothing outside it.
    #[test]
    fn fill_rect_conservation(img in arb_image(), r in arb_rect()) {
        let marker = Rgb::new(1, 2, 3);
        let mut canvas = img.clone();
        // Ensure the marker color doesn't pre-exist.
        canvas.map_in_place(|c| if c == marker { Rgb::new(1, 2, 4) } else { c });
        let before = canvas.clone();
        draw::fill_rect(&mut canvas, &r, marker);
        let clipped = r.intersect(&canvas.bounds());
        prop_assert_eq!(canvas.count_color(marker), clipped.area());
        for (x, y, c) in canvas.enumerate_pixels() {
            if clipped.contains(x as i64, y as i64) {
                prop_assert_eq!(c, marker);
            } else {
                prop_assert_eq!(c, before.get(x, y));
            }
        }
    }

    /// Cropping then reading agrees with direct pixel access.
    #[test]
    fn crop_agrees_with_get(img in arb_image(), r in arb_rect()) {
        let clipped = r.intersect(&img.bounds());
        match img.crop(&r) {
            None => prop_assert!(clipped.is_empty()),
            Some(c) => {
                prop_assert_eq!(c.pixel_count(), clipped.area());
                for (x, y) in clipped.pixels() {
                    prop_assert_eq!(
                        c.get((x - clipped.x0) as u32, (y - clipped.y0) as u32),
                        img.get(x as u32, y as u32)
                    );
                }
            }
        }
    }

    /// HSV round-trip drifts by at most one 8-bit step per channel.
    #[test]
    fn hsv_roundtrip_bounded_drift(rgb in any::<(u8, u8, u8)>()) {
        let c = Rgb::new(rgb.0, rgb.1, rgb.2);
        let back = c.to_hsv().to_rgb();
        prop_assert!((c.r as i16 - back.r as i16).abs() <= 1);
        prop_assert!((c.g as i16 - back.g as i16).abs() <= 1);
        prop_assert!((c.b as i16 - back.b as i16).abs() <= 1);
    }
}

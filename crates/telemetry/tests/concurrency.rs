//! Telemetry concurrency: the relaxed-atomic counters and histograms must
//! lose no increments when many threads hammer the same series, concurrent
//! get-or-register races must all resolve to one handle, and the flight
//! recorder's ring buffer must stay consistent through wraparound under
//! concurrent writers.

use mmdb_telemetry::{EventKind, FlightRecorder, Registry};
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn contended_counter_and_histogram_totals_are_exact() {
    let registry = Arc::new(Registry::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            std::thread::spawn(move || {
                let c = r.counter("mmdb_test_contended_total");
                let h = r.histogram("mmdb_test_contended_latency_seconds");
                for i in 0..PER_THREAD {
                    c.inc();
                    if i % 2 == 0 {
                        c.add(2);
                    }
                    h.observe(Duration::from_micros((t as u64 * 37 + i) % 200 + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Each thread contributes PER_THREAD incs plus 2 × PER_THREAD/2 adds.
    let expected = THREADS as u64 * (PER_THREAD + PER_THREAD);
    assert_eq!(
        registry.counter("mmdb_test_contended_total").get(),
        expected
    );

    let h = registry.histogram("mmdb_test_contended_latency_seconds");
    let observations = THREADS as u64 * PER_THREAD;
    assert_eq!(h.count(), observations);
    // The +Inf cumulative bucket accounts for every observation.
    assert_eq!(h.cumulative_buckets().last().unwrap().1, observations);

    let snap = registry.snapshot();
    assert_eq!(snap.get("mmdb_test_contended_total"), expected);
    assert_eq!(
        snap.get("mmdb_test_contended_latency_seconds_count"),
        observations
    );
}

#[test]
fn racing_registrations_share_one_series() {
    let registry = Arc::new(Registry::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&registry);
            // Every thread re-registers the same name before each increment,
            // so the get-or-insert race itself is under test.
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    r.counter("mmdb_test_race_total").inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("mmdb_test_race_total").get(),
        THREADS as u64 * PER_THREAD
    );
    // One series, not one per thread.
    assert_eq!(registry.snapshot().values.len(), 1);
}

#[test]
fn ring_buffer_wraparound_under_concurrent_writers() {
    const CAPACITY: usize = 64;
    const EVENTS_PER_THREAD: u64 = 1_000;
    let recorder = Arc::new(FlightRecorder::with_capacity(CAPACITY));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&recorder);
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    r.record(
                        EventKind::QueryEnd,
                        format!("t{t}e{i}"),
                        &[("thread", t as u64), ("i", i)],
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every claim was counted, even though most slots were overwritten.
    let total = THREADS as u64 * EVENTS_PER_THREAD;
    assert_eq!(recorder.recorded_total(), total);

    // After the dust settles the ring holds exactly the newest CAPACITY
    // events, in strictly increasing sequence order.
    let events = recorder.events();
    assert_eq!(events.len(), CAPACITY);
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(events.last().unwrap().seq, total - 1);
    assert_eq!(events.first().unwrap().seq, total - CAPACITY as u64);
    // Payloads survived intact: detail matches the structured counts.
    for e in &events {
        let (t, i) = (e.counts[0].1, e.counts[1].1);
        assert_eq!(e.detail, format!("t{t}e{i}"));
        assert_eq!(e.kind, EventKind::QueryEnd);
    }
}

#[test]
fn draining_while_writers_race_yields_consistent_events() {
    const CAPACITY: usize = 32;
    let recorder = Arc::new(FlightRecorder::with_capacity(CAPACITY));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let r = Arc::clone(&recorder);
            let s = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !s.load(std::sync::atomic::Ordering::Relaxed) {
                    r.record(EventKind::CacheEviction, format!("t{t}"), &[("i", i)]);
                    i += 1;
                }
            })
        })
        .collect();
    // Drain repeatedly mid-flight: every drain must be a strictly ordered
    // slice of valid events, never torn or duplicated.
    for _ in 0..200 {
        let events = recorder.events();
        assert!(events.len() <= CAPACITY);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        for e in &events {
            assert!(e.detail.starts_with('t'));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

//! Registry concurrency: the relaxed-atomic counters and histograms must
//! lose no increments when many threads hammer the same series, and
//! concurrent get-or-register races must all resolve to one handle.

use mmdb_telemetry::Registry;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn contended_counter_and_histogram_totals_are_exact() {
    let registry = Arc::new(Registry::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&registry);
            std::thread::spawn(move || {
                let c = r.counter("mmdb_test_contended_total");
                let h = r.histogram("mmdb_test_contended_latency_seconds");
                for i in 0..PER_THREAD {
                    c.inc();
                    if i % 2 == 0 {
                        c.add(2);
                    }
                    h.observe(Duration::from_micros((t as u64 * 37 + i) % 200 + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Each thread contributes PER_THREAD incs plus 2 × PER_THREAD/2 adds.
    let expected = THREADS as u64 * (PER_THREAD + PER_THREAD);
    assert_eq!(
        registry.counter("mmdb_test_contended_total").get(),
        expected
    );

    let h = registry.histogram("mmdb_test_contended_latency_seconds");
    let observations = THREADS as u64 * PER_THREAD;
    assert_eq!(h.count(), observations);
    // The +Inf cumulative bucket accounts for every observation.
    assert_eq!(h.cumulative_buckets().last().unwrap().1, observations);

    let snap = registry.snapshot();
    assert_eq!(snap.get("mmdb_test_contended_total"), expected);
    assert_eq!(
        snap.get("mmdb_test_contended_latency_seconds_count"),
        observations
    );
}

#[test]
fn racing_registrations_share_one_series() {
    let registry = Arc::new(Registry::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = Arc::clone(&registry);
            // Every thread re-registers the same name before each increment,
            // so the get-or-insert race itself is under test.
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    r.counter("mmdb_test_race_total").inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("mmdb_test_race_total").get(),
        THREADS as u64 * PER_THREAD
    );
    // One series, not one per thread.
    assert_eq!(registry.snapshot().values.len(), 1);
}

//! Property tests for the query-heat table's decay semantics.
//!
//! The ranking contract (`mmdbctl top --sort heat`, the `/heat` endpoint)
//! rests on one algebraic fact: both slot mutations — `record` (add a
//! constant) and a decay tick (multiply by a constant in (0, 1), floored)
//! — are monotone in the slot value. So a slot that receives a *superset*
//! of another slot's records, under any interleaving of records and decay
//! ticks, is never ranked below it. These tests drive random interleavings
//! through the real `HeatTable` and check the invariant at every step.

use mmdb_telemetry::HeatTable;
use proptest::prelude::*;
use std::time::Duration;

/// One step of an interleaved history.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Record only into the superset slot A.
    RecordA,
    /// Record into both A and B (so A's records stay a superset of B's).
    RecordBoth,
    /// Apply this many decay ticks to the whole table.
    Decay(u32),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::RecordA),
        2 => Just(Step::RecordBoth),
        1 => (1u32..5).prop_map(Step::Decay),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Superset slot A never ranks below subset slot B, at any step of any
    /// interleaving of queries and decay ticks.
    #[test]
    fn decayed_heat_is_order_preserving(
        steps in proptest::collection::vec(arb_step(), 1..120),
        half_life_secs in 1u64..120,
    ) {
        let table = HeatTable::with_shards(2);
        table.set_half_life(Duration::from_secs(half_life_secs));
        let (mut records_a, mut records_b) = (0u64, 0u64);
        for (i, step) in steps.iter().enumerate() {
            match *step {
                Step::RecordA => {
                    table.record(0, 1, 0);
                    records_a += 1;
                }
                Step::RecordBoth => {
                    table.record(0, 1, 0);
                    table.record(7, 1, 0);
                    records_a += 1;
                    records_b += 1;
                }
                Step::Decay(ticks) => table.decay_ticks(ticks),
            }
            let (a, b) = (table.heat_of(0, 1, 0), table.heat_of(7, 1, 0));
            prop_assert!(
                a >= b,
                "step {i}: superset heat {a} < subset heat {b} ({records_a} vs {records_b} records)"
            );
            // Heat never exceeds the undecayed record count, and lifetime
            // totals ignore decay entirely.
            prop_assert!(a <= records_a as f64 + 1e-9);
            prop_assert_eq!(table.total_of(0, 1, 0), records_a);
            prop_assert_eq!(table.total_of(7, 1, 0), records_b);
        }
    }

    /// Decay is uniform: a tick multiplies every slot by the same factor,
    /// so the full ranking (not just one pair) is preserved across ticks.
    #[test]
    fn ticks_preserve_the_whole_ranking(
        counts in proptest::collection::vec(1u32..200, 2..8),
        ticks in 1u32..30,
    ) {
        let table = HeatTable::with_shards(1);
        table.set_half_life(Duration::from_secs(10));
        for (bin, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                table.record(bin as u32, 0, 0);
            }
        }
        let before: Vec<u32> = table.snapshot().iter().map(|e| e.bin).collect();
        table.decay_ticks(ticks);
        let after: Vec<u32> = table.snapshot().iter().map(|e| e.bin).collect();
        prop_assert_eq!(before, after, "ranking changed across a uniform decay");
    }
}

//! Tail-sampled trace store: a bounded ring of completed request traces.
//!
//! Every traced request is *built* cheaply and then *offered* to the store,
//! which decides retroactively whether to keep it. A trace is kept when any
//! of the following holds:
//!
//! * the caller forces it (server running in trace mode `full`),
//! * the client marked the request as head-sampled on the wire,
//! * the request ended in a non-OK status, or
//! * its total duration reached the keep threshold
//!   ([`set_trace_keep_threshold`], default 100ms).
//!
//! This is classic tail-based sampling: the slow tail and every error are
//! always retrievable by trace id, while the fast common case costs one
//! branch and a dropped allocation. The store holds the most recent
//! [`DEFAULT_TRACE_STORE_CAPACITY`] kept traces; older ones are evicted
//! oldest-first.

use crate::trace::QueryTrace;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Default number of kept traces the store retains.
pub const DEFAULT_TRACE_STORE_CAPACITY: usize = 256;

/// Default retroactive-keep latency threshold.
pub const DEFAULT_TRACE_KEEP_THRESHOLD: Duration = Duration::from_millis(100);

/// Wire-propagated trace context: a nonzero id plus the client's
/// head-sampling decision. Carried in protocol v2 request frames and echoed
/// in responses so clients can correlate their calls with server-side spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Nonzero trace id; rendered as 16 hex digits in JSON and CLI output.
    pub trace_id: u64,
    /// Head-sampling decision made by the client: sampled requests are
    /// always kept by the store regardless of latency or status.
    pub sampled: bool,
}

impl TraceContext {
    /// A fresh context with a generated id.
    pub fn generate(sampled: bool) -> Self {
        TraceContext {
            trace_id: next_trace_id(),
            sampled,
        }
    }
}

/// Why a trace was kept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeepReason {
    /// The server runs with 100% trace retention (`full` mode).
    Forced,
    /// The client head-sampled the request on the wire.
    Sampled,
    /// The request ended in a non-OK status.
    Error,
    /// Total duration reached the keep threshold (the slow tail).
    Slow,
}

impl KeepReason {
    pub fn as_str(self) -> &'static str {
        match self {
            KeepReason::Forced => "forced",
            KeepReason::Sampled => "sampled",
            KeepReason::Error => "error",
            KeepReason::Slow => "slow",
        }
    }
}

/// One kept trace plus the request-level metadata needed to list and filter
/// without walking the span tree.
#[derive(Clone, Debug)]
pub struct StoredTrace {
    pub trace_id: u64,
    /// Wall-clock microseconds since the Unix epoch at completion.
    pub unix_micros: u64,
    /// Request opcode name (`range`, `knn`, …).
    pub opcode: String,
    /// Response status name (`OK`, `DEADLINE_EXCEEDED`, …).
    pub status: String,
    /// End-to-end duration (queue wait + execution).
    pub total: Duration,
    /// Time spent in the admission queue before a worker picked it up.
    pub queue_wait: Duration,
    pub keep_reason: KeepReason,
    /// The full span tree (queue_wait / execute / per-plan stages).
    pub trace: QueryTrace,
}

/// A bounded store of kept traces. One process-global instance lives behind
/// [`trace_store`]; independent instances are used in tests.
pub struct TraceStore {
    inner: Mutex<VecDeque<StoredTrace>>,
    capacity: usize,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::with_capacity(DEFAULT_TRACE_STORE_CAPACITY)
    }
}

impl TraceStore {
    /// A store retaining at most `capacity` kept traces (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceStore {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Applies the tail-sampling keep decision and stores the trace if it
    /// survives. Returns the reason when kept, `None` when dropped.
    ///
    /// `force` corresponds to the server's `full` trace mode; `sampled` is
    /// the client's wire-propagated head-sampling bit; `is_error` covers
    /// every non-OK status; the latency test compares `total` against the
    /// process-wide keep threshold.
    pub fn offer(&self, candidate: StoredTrace, force: bool) -> Option<KeepReason> {
        let reason = if force {
            KeepReason::Forced
        } else if candidate.keep_reason == KeepReason::Sampled {
            KeepReason::Sampled
        } else if candidate.keep_reason == KeepReason::Error {
            KeepReason::Error
        } else if candidate.total >= trace_keep_threshold() {
            KeepReason::Slow
        } else {
            crate::counter!("mmdb_trace_dropped_total").inc();
            return None;
        };
        crate::global()
            .counter(&format!(
                "mmdb_trace_kept_total{{reason=\"{}\"}}",
                reason.as_str()
            ))
            .inc();
        let mut stored = candidate;
        stored.keep_reason = reason;
        let mut inner = self.inner.lock();
        if inner.len() == self.capacity {
            inner.pop_front();
        }
        inner.push_back(stored);
        crate::gauge!("mmdb_trace_store_entries").set(inner.len() as u64);
        Some(reason)
    }

    /// The kept trace with this id, if still retained (newest wins when the
    /// same id was somehow stored twice).
    pub fn get(&self, trace_id: u64) -> Option<StoredTrace> {
        self.inner
            .lock()
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Metadata for every retained trace, oldest first.
    pub fn summaries(&self) -> Vec<StoredTrace> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drops every retained trace (tests and `mmdbctl` resets).
    pub fn clear(&self) {
        self.inner.lock().clear();
        crate::gauge!("mmdb_trace_store_entries").set(0);
    }

    /// `{"traces": [...]}` — one summary object per retained trace, newest
    /// first (the order a human debugging a live incident wants).
    pub fn render_summaries_json(&self) -> String {
        let mut out = String::from("{\n  \"traces\": [");
        let inner = self.inner.lock();
        for (i, t) in inner.iter().rev().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"trace_id\": \"{:016x}\", \"ts_micros\": {}, \"opcode\": \"{}\", \
                 \"status\": \"{}\", \"total_nanos\": {}, \"queue_wait_nanos\": {}, \
                 \"keep_reason\": \"{}\"}}",
                t.trace_id,
                t.unix_micros,
                t.opcode,
                t.status,
                t.total.as_nanos(),
                t.queue_wait.as_nanos(),
                t.keep_reason.as_str()
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The full span tree for one trace id as JSON, or `None` if the trace
    /// was dropped or already evicted.
    pub fn render_trace_json(&self, trace_id: u64) -> Option<String> {
        let t = self.get(trace_id)?;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace_id\": \"{:016x}\", \"ts_micros\": {}, \"opcode\": \"{}\", \
             \"status\": \"{}\", \"total_nanos\": {}, \"queue_wait_nanos\": {}, \
             \"keep_reason\": \"{}\", \"trace\": ",
            t.trace_id,
            t.unix_micros,
            t.opcode,
            t.status,
            t.total.as_nanos(),
            t.queue_wait.as_nanos(),
            t.keep_reason.as_str()
        );
        let tree = t.trace.render_json();
        out.push_str(tree.trim_end());
        out.push_str("}\n");
        Some(out)
    }
}

// Relaxed is deliberate: a standalone tuning knob, read per request; no
// other memory state is inferred from its value.
static TRACE_KEEP_NANOS: AtomicU64 = AtomicU64::new(100_000_000);

/// Sets the process-wide retroactive-keep threshold: any traced request
/// whose end-to-end duration reaches it is kept by the store even when
/// unsampled.
pub fn set_trace_keep_threshold(threshold: Duration) {
    let nanos = threshold.as_nanos().min(u64::MAX as u128) as u64;
    TRACE_KEEP_NANOS.store(nanos, Ordering::Relaxed);
}

/// The current retroactive-keep threshold (default 100ms).
pub fn trace_keep_threshold() -> Duration {
    Duration::from_nanos(TRACE_KEEP_NANOS.load(Ordering::Relaxed))
}

// Relaxed is deliberate: uniqueness comes from the RMW itself (every
// fetch_add returns a distinct value under any ordering); ids carry no
// publication obligation.
static TRACE_ID_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Generates a nonzero trace id: a per-process counter mixed with the boot
/// timestamp so ids from different processes almost never collide, without
/// needing a randomness dependency.
pub fn next_trace_id() -> u64 {
    static BOOT_MICROS: OnceLock<u64> = OnceLock::new();
    let boot = *BOOT_MICROS.get_or_init(|| {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0x5EED, |d| d.as_micros() as u64)
    });
    let n = TRACE_ID_COUNTER.fetch_add(1, Ordering::Relaxed);
    // SplitMix64-style finalizer over (boot ^ counter) gives well-spread,
    // guaranteed-unique-per-process ids.
    let mut z = boot
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(n.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.max(1)
}

/// Parses a trace id as printed by the JSON/CLI surfaces: 16 hex digits,
/// optionally `0x`-prefixed; plain decimal also accepted.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    // Prefer hex (the printed form is always 16 hex digits); fall back to
    // decimal for hand-typed ids.
    u64::from_str_radix(s, 16).ok().or_else(|| s.parse().ok())
}

static GLOBAL_TRACE_STORE: OnceLock<TraceStore> = OnceLock::new();

/// The process-wide trace store the query server reports into.
pub fn trace_store() -> &'static TraceStore {
    GLOBAL_TRACE_STORE.get_or_init(TraceStore::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(id: u64, total: Duration, reason: KeepReason) -> StoredTrace {
        let mut trace = QueryTrace::new("request");
        trace.stage("queue_wait", Duration::from_micros(5));
        trace.stage("execute", total.saturating_sub(Duration::from_micros(5)));
        trace.finish(total);
        StoredTrace {
            trace_id: id,
            unix_micros: 1,
            opcode: "range".into(),
            status: "OK".into(),
            total,
            queue_wait: Duration::from_micros(5),
            keep_reason: reason,
            trace,
        }
    }

    #[test]
    fn tail_sampling_keeps_slow_sampled_error_and_forced() {
        let before = trace_keep_threshold();
        set_trace_keep_threshold(Duration::from_millis(10));
        let store = TraceStore::with_capacity(16);

        // Fast, unsampled, OK → dropped.
        let fast = candidate(1, Duration::from_micros(50), KeepReason::Slow);
        assert_eq!(store.offer(fast, false), None);
        assert!(store.get(1).is_none());

        // Slow → retroactively kept.
        let slow = candidate(2, Duration::from_millis(20), KeepReason::Slow);
        assert_eq!(store.offer(slow, false), Some(KeepReason::Slow));
        assert_eq!(store.get(2).unwrap().keep_reason, KeepReason::Slow);

        // Head-sampled → kept even though fast.
        let sampled = candidate(3, Duration::from_micros(50), KeepReason::Sampled);
        assert_eq!(store.offer(sampled, false), Some(KeepReason::Sampled));

        // Error → kept even though fast and unsampled.
        let mut err = candidate(4, Duration::from_micros(50), KeepReason::Error);
        err.status = "INTERNAL".into();
        assert_eq!(store.offer(err, false), Some(KeepReason::Error));

        // Forced (full mode) → kept no matter what.
        let forced = candidate(5, Duration::from_micros(1), KeepReason::Slow);
        assert_eq!(store.offer(forced, true), Some(KeepReason::Forced));

        assert_eq!(store.len(), 4);
        set_trace_keep_threshold(before);
    }

    #[test]
    fn eviction_is_oldest_first_and_bounded() {
        let store = TraceStore::with_capacity(3);
        for id in 1..=5u64 {
            let c = candidate(id, Duration::from_micros(1), KeepReason::Slow);
            store.offer(c, true);
        }
        assert_eq!(store.len(), 3);
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_none());
        assert!(store.get(3).is_some());
        assert!(store.get(5).is_some());
    }

    #[test]
    fn json_summaries_are_newest_first_and_balanced() {
        let store = TraceStore::with_capacity(8);
        store.offer(
            candidate(10, Duration::from_micros(1), KeepReason::Slow),
            true,
        );
        store.offer(
            candidate(11, Duration::from_micros(1), KeepReason::Slow),
            true,
        );
        let json = store.render_summaries_json();
        let first = json.find("000000000000000b").unwrap();
        let second = json.find("000000000000000a").unwrap();
        assert!(first < second, "newest first: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let by_id = store.render_trace_json(10).unwrap();
        assert!(by_id.contains("\"queue_wait\""));
        assert!(by_id.contains("\"keep_reason\": \"forced\""));
        assert_eq!(by_id.matches('{').count(), by_id.matches('}').count());
        assert!(store.render_trace_json(999).is_none());
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn parses_hex_and_decimal_ids() {
        assert_eq!(parse_trace_id("00000000000000ff"), Some(255));
        assert_eq!(parse_trace_id("0xff"), Some(255));
        assert_eq!(parse_trace_id("  ff "), Some(255));
        // Pure-digit strings parse as hex first (the printed form).
        assert_eq!(parse_trace_id("10"), Some(16));
        assert_eq!(parse_trace_id("zz"), None);
    }
}

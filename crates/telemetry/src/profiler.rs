//! A dependency-free in-process sampling wall-clock profiler.
//!
//! There is no `libc` in the dependency tree, so signal-based stack capture
//! (the `perf`/`pprof` approach) is unavailable. Instead the profiler is
//! *cooperative*: instrumented threads publish their current logical stack —
//! a fixed-size array of interned frame ids updated by cheap RAII guards —
//! and a sampler thread reads every published stack at a fixed rate,
//! aggregating identical stacks into collapsed-stack text
//! (`thread;frame;frame count`, the format flamegraph tooling consumes).
//!
//! Publishing a frame is two relaxed/release atomic stores (push) and one
//! store (pop); unprofiled code pays nothing. Samples are racy by design —
//! a sampler may observe a stack mid-update — which is fine for a
//! statistical profile and keeps the hot path lock-free.
//!
//! Usage: a worker thread calls [`register_profiler_thread`] once (keeping
//! the guard alive for its lifetime), then brackets interesting regions
//! with [`profile_frame`]. [`collect_profile`] blocks for the requested
//! window and returns the rendered profile; it is wired to
//! `/debug/profile?seconds=N` on the exposition server.

use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Maximum logical stack depth captured per thread; deeper frames are
/// silently dropped (the shallow frames are the interesting attribution).
pub const MAX_PROFILE_DEPTH: usize = 16;

/// Default sampling rate. 97Hz (prime) avoids lockstep with millisecond-
/// periodic work, the same reason `perf` defaults to 99Hz.
pub const DEFAULT_SAMPLE_HZ: u32 = 97;

struct Interner {
    names: RwLock<Vec<&'static str>>,
}

impl Interner {
    fn intern(&self, name: &'static str) -> u32 {
        {
            let names = self.names.read();
            if let Some(idx) = names
                .iter()
                .position(|n| std::ptr::eq(*n, name) || *n == name)
            {
                return idx as u32;
            }
        }
        let mut names = self.names.write();
        if let Some(idx) = names.iter().position(|n| *n == name) {
            return idx as u32;
        }
        names.push(name);
        (names.len() - 1) as u32
    }

    fn resolve(&self, id: u32) -> &'static str {
        self.names.read().get(id as usize).copied().unwrap_or("?")
    }
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        names: RwLock::new(Vec::new()),
    })
}

/// One thread's published stack. Frames below `depth` are valid; the
/// sampler tolerates torn reads (push stores the frame id *before*
/// releasing the new depth, so it never reads an unwritten slot).
struct ThreadStack {
    name: &'static str,
    alive: AtomicBool,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_PROFILE_DEPTH],
}

impl ThreadStack {
    fn new(name: &'static str) -> Arc<Self> {
        Arc::new(ThreadStack {
            name,
            alive: AtomicBool::new(true),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        })
    }

    /// Snapshot as resolved frame names, outermost first.
    fn sample(&self) -> Vec<&'static str> {
        let depth = self.depth.load(Ordering::Acquire).min(MAX_PROFILE_DEPTH);
        (0..depth)
            .map(|i| interner().resolve(self.frames[i].load(Ordering::Relaxed)))
            .collect()
    }
}

fn registry() -> &'static RwLock<Vec<Arc<ThreadStack>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<ThreadStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadStack>>> = const { RefCell::new(None) };
}

/// Registration guard: keeps the calling thread visible to the sampler
/// until dropped.
pub struct ProfiledThread {
    stack: Arc<ThreadStack>,
}

impl Drop for ProfiledThread {
    fn drop(&mut self) {
        self.stack.alive.store(false, Ordering::Release);
        CURRENT.with(|c| c.borrow_mut().take());
        registry()
            .write()
            .retain(|s| s.alive.load(Ordering::Acquire));
    }
}

/// Registers the calling thread with the profiler under `name` (a role
/// label such as `"worker"`; threads sharing a role aggregate into the same
/// collapsed stacks). Keep the returned guard alive for the thread's
/// lifetime; frames pushed before registration (or after the guard drops)
/// are no-ops.
pub fn register_profiler_thread(name: &'static str) -> ProfiledThread {
    let stack = ThreadStack::new(name);
    registry().write().push(Arc::clone(&stack));
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&stack)));
    ProfiledThread { stack }
}

/// RAII frame: pops itself from the published stack on drop.
pub struct FrameGuard {
    stack: Option<Arc<ThreadStack>>,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if let Some(stack) = &self.stack {
            let depth = stack.depth.load(Ordering::Relaxed);
            if depth > 0 {
                stack.depth.store(depth - 1, Ordering::Release);
            }
        }
    }
}

/// Pushes `name` onto the calling thread's published stack; the frame pops
/// when the returned guard drops. No-op (and allocation-free) on threads
/// that never called [`register_profiler_thread`].
pub fn profile_frame(name: &'static str) -> FrameGuard {
    let stack = CURRENT.with(|c| c.borrow().clone());
    if let Some(stack) = &stack {
        let depth = stack.depth.load(Ordering::Relaxed);
        if depth < MAX_PROFILE_DEPTH {
            let id = interner().intern(name);
            stack.frames[depth].store(id, Ordering::Relaxed);
            // Publish the frame before the new depth so the sampler never
            // reads a slot that hasn't been written.
            stack.depth.store(depth + 1, Ordering::Release);
        } else {
            // Stack overflowed the fixed capacity: don't publish, and make
            // the guard a no-op so pops stay balanced.
            return FrameGuard { stack: None };
        }
    }
    FrameGuard { stack }
}

/// Number of currently registered (alive) profiled threads.
pub fn profiled_thread_count() -> usize {
    registry()
        .read()
        .iter()
        .filter(|s| s.alive.load(Ordering::Acquire))
        .count()
}

/// Samples every registered thread at `hz` for `window`, blocking the
/// caller, and returns the aggregate as collapsed-stack text: one line per
/// distinct stack, `role;frame;frame count`, sorted by stack name. A thread
/// observed between frames contributes its bare role line, so the output is
/// non-empty whenever at least one thread is registered.
pub fn collect_profile(window: Duration, hz: u32) -> String {
    let hz = hz.clamp(1, 1000);
    let interval = Duration::from_nanos(1_000_000_000 / u64::from(hz));
    let deadline = Instant::now() + window;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut samples_taken: u64 = 0;
    loop {
        {
            let threads = registry().read();
            for stack in threads.iter() {
                if !stack.alive.load(Ordering::Acquire) {
                    continue;
                }
                let mut key = String::from(stack.name);
                for frame in stack.sample() {
                    key.push(';');
                    key.push_str(frame);
                }
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        samples_taken += 1;
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep(interval.min(deadline - now));
    }
    let mut out = String::new();
    for (stack, count) in &counts {
        let _ = writeln!(out, "{stack} {count}");
    }
    let _ = writeln!(
        out,
        "# samples={samples_taken} hz={hz} window_ms={}",
        window.as_millis()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_threads_are_noops() {
        let before = profiled_thread_count();
        let _g = profile_frame("ignored");
        assert_eq!(profiled_thread_count(), before);
    }

    #[test]
    fn frames_publish_and_pop() {
        std::thread::spawn(|| {
            let _reg = register_profiler_thread("test-role");
            {
                let _a = profile_frame("outer");
                let _b = profile_frame("inner");
                let snapshot: Vec<_> = registry()
                    .read()
                    .iter()
                    .filter(|s| s.name == "test-role")
                    .flat_map(|s| s.sample())
                    .collect();
                assert_eq!(snapshot, vec!["outer", "inner"]);
            }
            let empty: Vec<_> = registry()
                .read()
                .iter()
                .filter(|s| s.name == "test-role")
                .flat_map(|s| s.sample())
                .collect();
            assert!(empty.is_empty());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn collect_profile_sees_registered_threads() {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let _reg = register_profiler_thread("prof-test-worker");
            let _frame = profile_frame("busy_loop");
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let profile = collect_profile(Duration::from_millis(60), 200);
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        assert!(
            profile.contains("prof-test-worker;busy_loop"),
            "profile missing expected stack:\n{profile}"
        );
        assert!(profile.contains("# samples="));
    }

    #[test]
    fn deregistration_removes_thread() {
        let handle = std::thread::spawn(|| {
            let reg = register_profiler_thread("ephemeral");
            drop(reg);
        });
        handle.join().unwrap();
        assert!(registry().read().iter().all(|s| s.name != "ephemeral"));
    }

    #[test]
    fn depth_overflow_is_safe() {
        std::thread::spawn(|| {
            let _reg = register_profiler_thread("deep");
            let mut guards = Vec::new();
            for _ in 0..(MAX_PROFILE_DEPTH + 4) {
                guards.push(profile_frame("f"));
            }
            let sampled = registry()
                .read()
                .iter()
                .find(|s| s.name == "deep")
                .map_or(0, |s| s.sample().len());
            assert_eq!(sampled, MAX_PROFILE_DEPTH);
            drop(guards);
            let after = registry()
                .read()
                .iter()
                .find(|s| s.name == "deep")
                .map_or(0, |s| s.sample().len());
            assert_eq!(after, 0);
        })
        .join()
        .unwrap();
    }
}

//! The lock-free metrics registry: counters, gauges, fixed-bucket latency
//! histograms, and Prometheus/JSON exposition.

use mmdb_conc::sync::atomic::{AtomicU64, Ordering};
use mmdb_conc::sync::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
///
/// All operations are `Relaxed`, deliberately: each series is an
/// independent statistic — no reader derives the state of *other* memory
/// from a counter value, and exposition only needs each value to be
/// internally consistent (RMWs guarantee no lost increments regardless of
/// ordering). Model-checked in `crates/conc/tests/model_ring.rs`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
///
/// `Relaxed` is deliberate — see [`Counter`]; last-write-wins needs no
/// inter-thread ordering beyond the store itself.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds in seconds: 1µs .. 10s, roughly 1-2-5 per decade.
/// A final implicit `+Inf` bucket catches the rest.
const LATENCY_BOUNDS_SECONDS: [f64; 15] = [
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 1e-1, 1e1,
];

/// A fixed-bucket latency histogram. Observations are `Duration`s; exposition
/// follows the Prometheus `_bucket`/`_sum`/`_count` convention in seconds.
#[derive(Debug)]
pub struct Histogram {
    /// One slot per bound plus the trailing `+Inf` bucket. Non-cumulative;
    /// accumulated at exposition time.
    buckets: [AtomicU64; LATENCY_BOUNDS_SECONDS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
    /// Largest single observation so far — anchors the `+Inf` bucket for
    /// quantile estimation and feeds the `max` column of `mmdbctl top`.
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation. The four `Relaxed` RMWs are deliberate and
    /// independently consistent; a concurrent snapshot may transiently see
    /// `count` without the matching `sum_nanos` (or vice versa), which
    /// exposition tolerates — both are monotone and converge.
    #[inline]
    pub fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = LATENCY_BOUNDS_SECONDS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(LATENCY_BOUNDS_SECONDS.len());
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    /// Largest single observation so far.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The shared upper bucket bounds, in seconds, excluding the implicit
    /// trailing `+Inf` bucket.
    pub fn bucket_bounds() -> &'static [f64] {
        &LATENCY_BOUNDS_SECONDS
    }

    /// A mergeable point-in-time copy of this histogram's state, suitable
    /// for quantile estimation and windowed diffs.
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        crate::HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }

    /// Cumulative bucket counts paired with their upper bounds, ending with
    /// the `+Inf` bucket (bound = `f64::INFINITY`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, slot) in self.buckets.iter().enumerate() {
            acc += slot.load(Ordering::Relaxed);
            let bound = LATENCY_BOUNDS_SECONDS
                .get(i)
                .copied()
                .unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// A point-in-time copy of every counter/gauge value and histogram count,
/// keyed by series name. Histograms contribute `<name>_count` and
/// `<name>_sum_nanos` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub values: BTreeMap<String, u64>,
}

impl Snapshot {
    /// The value of one series, defaulting to 0 for unknown names.
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Per-series difference `self - earlier`, for measuring one workload's
    /// contribution against monotonic counters. Gauges report their current
    /// value unchanged (saturating keeps decreasing gauges at 0).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut values = BTreeMap::new();
        for (name, &v) in &self.values {
            values.insert(name.clone(), v.saturating_sub(earlier.get(name)));
        }
        Snapshot { values }
    }
}

/// The metrics registry. Series are created on first use and live for the
/// process lifetime; reads for exposition take the name-map read lock only.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.read().get(name) {
        return Arc::clone(existing);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

/// Series name up to the label block, e.g. `a{plan="x"}` → `a`.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splices extra Prometheus labels into a series name that may or may not
/// already carry a label block.
fn with_labels(name: &str, extra: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{extra}}}"),
        None => format!("{name}{{{extra}}}"),
    }
}

impl Registry {
    /// Get-or-register the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Get-or-register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Get-or-register the latency histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Every registered histogram, name-sorted — the iteration surface
    /// behind `mmdbctl top`.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .iter()
            .map(|(name, h)| (name.clone(), Arc::clone(h)))
            .collect()
    }

    /// Point-in-time copy of all series.
    pub fn snapshot(&self) -> Snapshot {
        let mut values = BTreeMap::new();
        for (name, c) in self.counters.read().iter() {
            values.insert(name.clone(), c.get());
        }
        for (name, g) in self.gauges.read().iter() {
            values.insert(name.clone(), g.get());
        }
        for (name, h) in self.histograms.read().iter() {
            values.insert(format!("{name}_count"), h.count());
            values.insert(
                format!("{name}_sum_nanos"),
                h.sum().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        Snapshot { values }
    }

    /// Prometheus text exposition format (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let fam = family(name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} {kind}");
                last_family = fam.to_string();
            }
        };
        for (name, c) in self.counters.read().iter() {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in self.gauges.read().iter() {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in self.histograms.read().iter() {
            type_line(&mut out, name, "histogram");
            for (bound, cumulative) in h.cumulative_buckets() {
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{bound}")
                };
                let series = with_labels(name, &format!("le=\"{le}\""));
                let fam_series = {
                    // `_bucket` suffix attaches to the family name, before labels.
                    let fam = family(&series);
                    series.replacen(fam, &format!("{fam}_bucket"), 1)
                };
                let _ = writeln!(out, "{fam_series} {cumulative}");
            }
            let fam = family(name);
            let _ = writeln!(
                out,
                "{} {}",
                name.replacen(fam, &format!("{fam}_sum"), 1),
                h.sum().as_secs_f64()
            );
            let _ = writeln!(
                out,
                "{} {}",
                name.replacen(fam, &format!("{fam}_count"), 1),
                h.count()
            );
        }
        out
    }

    /// JSON exposition: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {"count": n, "sum_seconds": s}}}`.
    ///
    /// Series names embed Prometheus label blocks (`{plan="bwm"}`), whose
    /// quotes must be escaped to keep the keys valid JSON strings.
    pub fn render_json(&self) -> String {
        fn key(name: &str) -> String {
            name.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"counters\": {");
        let counters = self.counters.read();
        for (i, (name, c)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", key(name), c.get());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let gauges = self.gauges.read();
        for (i, (name, g)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", key(name), g.get());
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = self.histograms.read();
        for (i, (name, h)) in histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum_seconds\": {}}}",
                key(name),
                h.count(),
                h.sum().as_secs_f64()
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all instrumented layers report into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::default();
        r.counter("a_total").add(3);
        r.counter("a_total").inc();
        r.gauge("g").set(7);
        assert_eq!(r.counter("a_total").get(), 4);
        assert_eq!(r.gauge("g").get(), 7);
        let snap = r.snapshot();
        assert_eq!(snap.get("a_total"), 4);
        assert_eq!(snap.get("g"), 7);
        assert_eq!(snap.get("missing"), 0);
    }

    #[test]
    fn histogram_buckets_cumulative() {
        let r = Registry::default();
        let h = r.histogram("lat_seconds");
        h.observe(Duration::from_nanos(500)); // <= 1µs
        h.observe(Duration::from_micros(30)); // <= 50µs
        h.observe(Duration::from_secs(100)); // +Inf
        assert_eq!(h.count(), 3);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.first().unwrap().1, 1);
        assert_eq!(buckets.last().unwrap(), &(f64::INFINITY, 3));
        // Cumulative counts never decrease.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::default();
        r.counter("mmdb_x_total{plan=\"bwm\"}").add(2);
        r.counter("mmdb_x_total{plan=\"rbm\"}").add(5);
        r.gauge("mmdb_g").set(1);
        r.histogram("mmdb_lat_seconds")
            .observe(Duration::from_micros(3));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE mmdb_x_total counter"));
        // One TYPE line per family even with two labelled series.
        assert_eq!(text.matches("# TYPE mmdb_x_total").count(), 1);
        assert!(text.contains("mmdb_x_total{plan=\"bwm\"} 2"));
        assert!(text.contains("mmdb_x_total{plan=\"rbm\"} 5"));
        assert!(text.contains("# TYPE mmdb_lat_seconds histogram"));
        assert!(text.contains("mmdb_lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("mmdb_lat_seconds_count 1"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let r = Registry::default();
        r.counter("c_total").inc();
        r.counter("c_total{plan=\"bwm\"}").add(3);
        r.histogram("h_seconds").observe(Duration::from_micros(2));
        let json = r.render_json();
        assert!(json.contains("\"c_total\": 1"));
        // Label-block quotes are escaped so the key stays one JSON string.
        assert!(json.contains("\"c_total{plan=\\\"bwm\\\"}\": 3"));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn snapshot_delta() {
        let r = Registry::default();
        r.counter("c_total").add(10);
        let before = r.snapshot();
        r.counter("c_total").add(5);
        let after = r.snapshot();
        assert_eq!(after.delta(&before).get("c_total"), 5);
    }

    #[test]
    fn label_splicing() {
        assert_eq!(with_labels("a", "le=\"1\""), "a{le=\"1\"}");
        assert_eq!(
            with_labels("a{plan=\"x\"}", "le=\"1\""),
            "a{plan=\"x\",le=\"1\"}"
        );
        assert_eq!(family("a{plan=\"x\"}"), "a");
    }
}

//! Query-heat accounting: a lock-free, exponentially-decayed per-(bin,
//! plan, profile) activity table.
//!
//! Every executed range query bumps one fixed-point slot chosen by its
//! quantizer bin, query plan, and rule profile. Slots live in a small
//! number of shards so concurrent recorders touch different cache lines;
//! recording is one relaxed `fetch_add` on a thread-pinned shard — no
//! allocation, no locks, no branches beyond the bounds clamp.
//!
//! Heat decays exponentially: a periodic tick multiplies every slot by a
//! constant factor derived from the configured half-life, so the table
//! ranks *recent* demand rather than lifetime totals (a parallel
//! non-decayed `total` array keeps the lifetime count for context). The
//! tick is opportunistic — any observer (`/heat`, the `/metrics`
//! prerender hook, `snapshot`) claims the elapsed whole ticks via a CAS
//! on a last-tick timestamp and applies the compound factor; there is no
//! mandatory background thread, and because decay multiplies every slot
//! by the *same* factor, a late tick never changes the relative ranking.
//!
//! Both the add and the decay step are monotone in the slot value
//! (`fetch_add` by a constant; `floor(v * f)` with `0 < f < 1`), so if
//! slot A has received a superset of slot B's records, `heat(A) >=
//! heat(B)` holds at every instant regardless of how ticks interleave
//! with records — the property the proptest in this module's test suite
//! pins down, and the reason `mmdbctl top --sort heat` can trust the
//! ordering without freezing the table.
//!
//! Atomics come from the `mmdb_conc` facade so the sharded table can be
//! model-checked under racing recorders (`crates/conc/tests/model_heat.rs`).

use mmdb_conc::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use mmdb_conc::sync::Mutex;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Plan labels, indexed by the `plan` argument of [`HeatTable::record`].
/// Order matches `QueryPlan`'s variants as spelled on metric labels.
pub const HEAT_PLANS: [&str; 4] = ["instantiate", "rbm", "bwm", "indexed"];

/// Profile labels, indexed by the `profile` argument of
/// [`HeatTable::record`].
pub const HEAT_PROFILES: [&str; 2] = ["conservative", "paper_table1"];

/// Bins `0..HEAT_MAX_BINS` get their own slot; anything larger shares one
/// overflow slot (reported as bin `HEAT_MAX_BINS`). The default quantizer
/// has 64 bins, so in practice the overflow slot stays cold.
pub const HEAT_MAX_BINS: usize = 256;

/// Default half-life of recorded heat.
pub const DEFAULT_HEAT_HALF_LIFE: Duration = Duration::from_secs(60);

/// Decay-tick granularity: elapsed wall-clock is quantized to whole ticks
/// so the compound factor is deterministic for a given tick count.
const TICK_MS: u64 = 1000;

/// Fixed-point scale: one recorded query adds `SCALE` to its slot, so a
/// slot value of `SCALE` means "one query's worth of heat".
const SCALE: u64 = 1 << 20;

/// Slots per shard: every (bin, plan, profile) combination plus the
/// overflow bin.
const SLOTS: usize = (HEAT_MAX_BINS + 1) * HEAT_PLANS.len() * HEAT_PROFILES.len();

const DEFAULT_SHARDS: usize = 8;

#[inline]
fn slot_index(bin: u32, plan: usize, profile: usize) -> usize {
    let bin = (bin as usize).min(HEAT_MAX_BINS);
    (bin * HEAT_PLANS.len() + plan) * HEAT_PROFILES.len() + profile
}

/// One shard: a decayed fixed-point heat array and a parallel lifetime
/// total array, both indexed by [`slot_index`].
struct Shard {
    heat: Box<[AtomicU64]>,
    total: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            heat: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            total: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// One ranked entry of a heat [`snapshot`](HeatTable::snapshot).
#[derive(Clone, Debug, PartialEq)]
pub struct HeatEntry {
    /// Quantizer bin (`HEAT_MAX_BINS` is the shared overflow slot).
    pub bin: u32,
    /// Plan label from [`HEAT_PLANS`].
    pub plan: &'static str,
    /// Profile label from [`HEAT_PROFILES`].
    pub profile: &'static str,
    /// Decayed heat in query units (1.0 = one just-recorded query).
    pub heat: f64,
    /// Lifetime (non-decayed) query count for the same slot.
    pub total: u64,
}

/// The sharded, exponentially-decayed heat table. See the module docs for
/// the design; construct via [`heat`] for the process-wide instance or
/// [`HeatTable::with_shards`] in tests.
pub struct HeatTable {
    shards: Vec<Shard>,
    /// Per-tick decay factor as `f64::to_bits` (atomics hold no floats).
    factor_bits: AtomicU64,
    /// Millis since `epoch` of the last applied decay tick.
    last_tick_ms: AtomicU64,
    /// Round-robin assignment of recorder threads to shards.
    next_shard: AtomicUsize,
    epoch: Instant,
}

impl Default for HeatTable {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl HeatTable {
    /// A table with `shards` independent slot arrays (at least one).
    pub fn with_shards(shards: usize) -> Self {
        let table = HeatTable {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            factor_bits: AtomicU64::new(0),
            last_tick_ms: AtomicU64::new(0),
            next_shard: AtomicUsize::new(0),
            epoch: Instant::now(),
        };
        table.set_half_life(DEFAULT_HEAT_HALF_LIFE);
        table
    }

    /// Sets the heat half-life: after this long without new queries a
    /// slot's heat halves. Takes effect from the next decay tick.
    pub fn set_half_life(&self, half_life: Duration) {
        let secs = half_life.as_secs_f64().max(1e-3);
        let factor = 0.5f64.powf(TICK_MS as f64 / 1e3 / secs);
        self.factor_bits.store(factor.to_bits(), Ordering::Relaxed);
    }

    /// The per-tick decay factor currently in effect.
    fn factor(&self) -> f64 {
        f64::from_bits(self.factor_bits.load(Ordering::Relaxed))
    }

    /// The shard this thread records into, assigned round-robin on first
    /// use and cached in TLS so steady-state recording never touches
    /// shared shard-selection state.
    fn shard(&self) -> &Shard {
        thread_local! {
            static SHARD_SEED: std::cell::Cell<usize> =
                const { std::cell::Cell::new(usize::MAX) };
        }
        let seed = SHARD_SEED.with(|s| {
            if s.get() == usize::MAX {
                s.set(self.next_shard.fetch_add(1, Ordering::Relaxed));
            }
            s.get()
        });
        &self.shards[seed % self.shards.len()]
    }

    /// Records one query against `(bin, plan, profile)`. `plan` indexes
    /// [`HEAT_PLANS`], `profile` indexes [`HEAT_PROFILES`] (out-of-range
    /// values clamp to the last label rather than panicking — the hot
    /// path must never unwind). Two relaxed `fetch_add`s, no allocation.
    #[inline]
    pub fn record(&self, bin: u32, plan: usize, profile: usize) {
        let idx = slot_index(
            bin,
            plan.min(HEAT_PLANS.len() - 1),
            profile.min(HEAT_PROFILES.len() - 1),
        );
        let shard = self.shard();
        // Relaxed is deliberate: each slot is an independent statistic and
        // RMWs lose no increments regardless of ordering (same argument as
        // registry::Counter).
        shard.heat[idx].fetch_add(SCALE, Ordering::Relaxed);
        shard.total[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Applies `ticks` decay ticks to every slot immediately. The test
    /// and model-checking entry point; production decay goes through
    /// [`maybe_decay`](Self::maybe_decay).
    pub fn decay_ticks(&self, ticks: u32) {
        if ticks == 0 {
            return;
        }
        let compound = self.factor().powi(ticks.min(10_000) as i32);
        for shard in &self.shards {
            for slot in &shard.heat {
                // CAS loop so a racing `record` is never lost: the decay
                // multiply retries on top of the new value.
                let mut cur = slot.load(Ordering::Relaxed);
                loop {
                    if cur == 0 {
                        break;
                    }
                    let next = (cur as f64 * compound) as u64;
                    match slot.compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
        }
    }

    /// Claims and applies any whole decay ticks elapsed since the last
    /// tick. Lock-free: one CAS on the tick timestamp elects the thread
    /// that decays; losers (and sub-tick callers) return immediately.
    pub fn maybe_decay(&self) {
        let now_ms = self.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let last = self.last_tick_ms.load(Ordering::Relaxed);
        let elapsed_ticks = now_ms.saturating_sub(last) / TICK_MS;
        if elapsed_ticks == 0 {
            return;
        }
        // Advance by whole ticks (not to `now_ms`) so fractional remainders
        // carry over instead of being dropped.
        let claimed = last + elapsed_ticks * TICK_MS;
        if self
            .last_tick_ms
            .compare_exchange(last, claimed, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.decay_ticks(elapsed_ticks.min(u64::from(u32::MAX)) as u32);
        }
    }

    /// Decayed heat of one slot, in query units, summed across shards.
    pub fn heat_of(&self, bin: u32, plan: usize, profile: usize) -> f64 {
        let idx = slot_index(bin, plan, profile);
        let raw: u64 = self
            .shards
            .iter()
            .map(|s| s.heat[idx].load(Ordering::Relaxed))
            .sum();
        raw as f64 / SCALE as f64
    }

    /// Lifetime query count of one slot, summed across shards.
    pub fn total_of(&self, bin: u32, plan: usize, profile: usize) -> u64 {
        let idx = slot_index(bin, plan, profile);
        self.shards
            .iter()
            .map(|s| s.total[idx].load(Ordering::Relaxed))
            .sum()
    }

    /// Applies pending decay, then returns every non-zero slot ranked by
    /// decayed heat (hottest first; ties broken by lifetime total then by
    /// slot identity, so the order is deterministic).
    pub fn snapshot(&self) -> Vec<HeatEntry> {
        self.maybe_decay();
        let mut entries = Vec::new();
        for idx in 0..SLOTS {
            let (mut raw, mut total) = (0u64, 0u64);
            for shard in &self.shards {
                raw += shard.heat[idx].load(Ordering::Relaxed);
                total += shard.total[idx].load(Ordering::Relaxed);
            }
            if raw == 0 && total == 0 {
                continue;
            }
            let profile = idx % HEAT_PROFILES.len();
            let plan = (idx / HEAT_PROFILES.len()) % HEAT_PLANS.len();
            let bin = idx / (HEAT_PROFILES.len() * HEAT_PLANS.len());
            entries.push(HeatEntry {
                bin: bin as u32,
                plan: HEAT_PLANS[plan],
                profile: HEAT_PROFILES[profile],
                heat: raw as f64 / SCALE as f64,
                total,
            });
        }
        entries.sort_by(|a, b| {
            b.heat
                .total_cmp(&a.heat)
                .then(b.total.cmp(&a.total))
                .then(a.bin.cmp(&b.bin))
                .then(a.plan.cmp(b.plan))
                .then(a.profile.cmp(b.profile))
        });
        entries
    }

    /// Zeroes every slot and resets the tick clock. Test/bench helper so
    /// measured runs start cold.
    pub fn clear(&self) {
        for shard in &self.shards {
            for slot in &shard.heat {
                slot.store(0, Ordering::Relaxed);
            }
            for slot in &shard.total {
                slot.store(0, Ordering::Relaxed);
            }
        }
        let now_ms = self.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64;
        self.last_tick_ms.store(now_ms, Ordering::Relaxed);
    }
}

static HEAT: OnceLock<HeatTable> = OnceLock::new();

/// The process-wide heat table every query layer records into.
pub fn heat() -> &'static HeatTable {
    HEAT.get_or_init(HeatTable::default)
}

/// Series names currently published as `mmdb_heat` gauges, so entries that
/// cool out of the top set are zeroed rather than left frozen at their
/// last value. Cold path only (publishing, not recording).
static PUBLISHED: Mutex<Option<BTreeSet<String>>> = Mutex::new(None);

/// Refreshes the `mmdb_heat{bin,plan,profile}` gauge series from the top
/// `limit` snapshot entries (gauge value = heat rounded to the nearest
/// whole query unit). Called by the `/metrics` prerender hook.
pub fn publish_heat_gauges(limit: usize) {
    let entries = heat().snapshot();
    let mut published = PUBLISHED.lock();
    let previous = published.take().unwrap_or_default();
    let mut current = BTreeSet::new();
    for e in entries.iter().take(limit) {
        let name = format!(
            "mmdb_heat{{bin=\"{}\",plan=\"{}\",profile=\"{}\"}}",
            e.bin, e.plan, e.profile
        );
        crate::global().gauge(&name).set(e.heat.round() as u64);
        current.insert(name);
    }
    for stale in previous.difference(&current) {
        crate::global().gauge(stale).set(0);
    }
    *published = Some(current);
}

/// The `/heat` endpoint body: ranked entries as a JSON array, hottest
/// first, truncated to `limit`.
pub fn heat_json(limit: usize) -> String {
    let entries = heat().snapshot();
    let mut out = String::from("[");
    for (i, e) in entries.iter().take(limit).enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n  {{\"bin\": {}, \"plan\": \"{}\", \"profile\": \"{}\", \
             \"heat\": {:.3}, \"total\": {}}}",
            e.bin, e.plan, e.profile, e.heat, e.total
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rank() {
        let t = HeatTable::with_shards(2);
        for _ in 0..5 {
            t.record(3, 1, 0);
        }
        t.record(7, 2, 1);
        assert_eq!(t.total_of(3, 1, 0), 5);
        assert!((t.heat_of(3, 1, 0) - 5.0).abs() < 1e-9);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].bin, 3);
        assert_eq!(snap[0].plan, "rbm");
        assert_eq!(snap[0].profile, "conservative");
        assert_eq!(snap[1].bin, 7);
        assert_eq!(snap[1].plan, "bwm");
        assert_eq!(snap[1].profile, "paper_table1");
    }

    #[test]
    fn decay_halves_at_half_life() {
        let t = HeatTable::with_shards(1);
        t.set_half_life(Duration::from_secs(10));
        for _ in 0..1000 {
            t.record(0, 0, 0);
        }
        t.decay_ticks(10); // 10 one-second ticks = one half-life
        let h = t.heat_of(0, 0, 0);
        assert!(
            (h - 500.0).abs() < 1.0,
            "expected ~500 after half-life, got {h}"
        );
        // Lifetime totals never decay.
        assert_eq!(t.total_of(0, 0, 0), 1000);
    }

    #[test]
    fn overflow_bin_shared() {
        let t = HeatTable::with_shards(1);
        t.record(HEAT_MAX_BINS as u32 + 5, 0, 0);
        t.record(u32::MAX, 0, 0);
        assert_eq!(t.total_of(HEAT_MAX_BINS as u32, 0, 0), 2);
    }

    #[test]
    fn out_of_range_plan_profile_clamp() {
        let t = HeatTable::with_shards(1);
        t.record(1, 99, 99);
        assert_eq!(
            t.total_of(1, HEAT_PLANS.len() - 1, HEAT_PROFILES.len() - 1),
            1
        );
    }

    #[test]
    fn clear_resets() {
        let t = HeatTable::with_shards(2);
        t.record(1, 0, 0);
        t.clear();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn json_shape() {
        let t = heat();
        t.clear();
        t.record(4, 3, 0);
        let json = heat_json(10);
        assert!(json.contains("\"bin\": 4"));
        assert!(json.contains("\"plan\": \"indexed\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        t.clear();
    }

    /// Both mutation steps are monotone, so a slot that receives a
    /// superset of another's records stays at least as hot through any
    /// interleaving of records and decay ticks. The full randomized
    /// property lives in `tests/heat_prop.rs`; this pins one deterministic
    /// interleaving.
    #[test]
    fn decayed_heat_order_preserving_deterministic() {
        let t = HeatTable::with_shards(1);
        t.set_half_life(Duration::from_secs(5));
        for step in 0..60u32 {
            match step % 3 {
                0 => t.record(0, 0, 0), // A-only record
                1 => {
                    // Paired record: A stays a superset of B.
                    t.record(0, 0, 0);
                    t.record(1, 0, 0);
                }
                _ => t.decay_ticks(1 + step % 3),
            }
            let (a, b) = (t.heat_of(0, 0, 0), t.heat_of(1, 0, 0));
            assert!(a >= b, "step {step}: superset slot {a} < subset slot {b}");
        }
    }
}

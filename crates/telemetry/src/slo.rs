//! Declarative per-opcode SLOs with multi-window burn-rate alerting.
//!
//! An objective is declared per server opcode in a compact spec string,
//! e.g. `range=5ms@p99,err<0.1%;knn=20ms@p95`: the `range` opcode should
//! answer 99% of requests within 5ms and fail fewer than 0.1% of them.
//! Each objective defines an *error budget*: for `5ms@p99` the budget is
//! the 1% of requests allowed to be slower than 5ms.
//!
//! The engine evaluates budget consumption over two sliding windows (fast,
//! default 5m; slow, default 1h) by periodically snapshotting the opcode's
//! existing latency histogram and error counter and diffing against the
//! sample closest to each window's start — no second recording path, the
//! SLO machinery is a pure reader of metrics the server already keeps.
//! The *burn rate* of a window is `observed bad fraction / budgeted bad
//! fraction`: 1.0 means the budget is being consumed exactly as fast as it
//! accrues; 6.0 means six times faster. Alerting on the *minimum* of the
//! two windows is the standard multi-window guard: the fast window makes
//! alerts responsive, the slow window keeps a short blip from paging.
//!
//! State per objective follows `ok → warning → critical` with hysteresis:
//! escalation is immediate, de-escalation requires the computed level to
//! hold for several consecutive evaluations, so an alert that flaps around
//! a threshold settles instead of oscillating. Every transition lands in
//! the flight recorder as an [`EventKind::SloStateChange`] event and the
//! current state/burn rates are exported as `mmdb_slo_*` gauges; `/alerts`
//! renders the whole picture as JSON.
//!
//! Evaluation is opportunistic (driven by `/alerts` and the `/metrics`
//! prerender hook) and internally rate-limited, so an idle server does no
//! SLO work and a scraped one does a few snapshot diffs per second at
//! most.

use crate::percentile::HistogramSnapshot;
use crate::recorder::EventKind;
use crate::registry::{Counter, Gauge, Histogram, Registry};
use mmdb_conc::sync::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Default fast (paging) window.
pub const DEFAULT_FAST_WINDOW: Duration = Duration::from_secs(5 * 60);
/// Default slow (guard) window.
pub const DEFAULT_SLOW_WINDOW: Duration = Duration::from_secs(60 * 60);

/// Burn rate at which an objective enters `warning` (budget consumed
/// exactly as fast as it accrues).
pub const WARN_BURN: f64 = 1.0;
/// Burn rate at which an objective enters `critical`.
pub const CRIT_BURN: f64 = 6.0;
/// Consecutive calmer evaluations required before de-escalating.
const RECOVERY_EVALS: u32 = 3;
/// Minimum spacing between stored samples (evaluations in between reuse
/// the existing history).
const SAMPLE_INTERVAL: Duration = Duration::from_millis(200);

/// Opcodes an objective may target (the server's wire opcodes).
const KNOWN_OPCODES: [&str; 5] = ["ping", "range", "knn", "lookup", "stats"];

/// One latency objective: `quantile` of requests must finish within
/// `threshold`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyObjective {
    pub threshold: Duration,
    /// e.g. 0.99 for `@p99`; the budgeted bad fraction is `1 - quantile`.
    pub quantile: f64,
}

/// The declared objective for one opcode.
#[derive(Clone, Debug, PartialEq)]
pub struct SloObjective {
    /// Wire opcode name (`range`, `knn`, ...).
    pub opcode: String,
    pub latency: Option<LatencyObjective>,
    /// Maximum tolerated error fraction (e.g. 0.001 for `err<0.1%`).
    pub max_error_fraction: Option<f64>,
}

impl SloObjective {
    /// The spec-syntax rendering, e.g. `5ms@p99,err<0.1%`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(lat) = self.latency {
            let pct = lat.quantile * 100.0;
            // Render p99 / p99.9 without trailing zeros.
            let p = if (pct - pct.round()).abs() < 1e-9 {
                format!("{}", pct.round())
            } else {
                format!("{pct}")
            };
            parts.push(format!("{}@p{p}", describe_duration(lat.threshold)));
        }
        if let Some(err) = self.max_error_fraction {
            parts.push(format!("err<{}%", err * 100.0));
        }
        parts.join(",")
    }
}

/// A parsed `--slo` configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    pub objectives: Vec<SloObjective>,
    pub fast_window: Duration,
    pub slow_window: Duration,
}

/// Renders a duration back in the spec syntax: the coarsest unit that
/// divides it evenly, no trailing zeros (`5ms`, `250us`, `2s`).
fn describe_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos == 0 {
        "0ms".to_string()
    } else if nanos.is_multiple_of(1_000_000_000) {
        format!("{}s", nanos / 1_000_000_000)
    } else if nanos.is_multiple_of(1_000_000) {
        format!("{}ms", nanos / 1_000_000)
    } else if nanos.is_multiple_of(1_000) {
        format!("{}us", nanos / 1_000)
    } else {
        format!("{nanos}ns")
    }
}

/// Parses durations of the spec syntax: `250us`, `5ms`, `2s`, `3m`, `1h`
/// (a bare number means milliseconds).
fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (num, unit) = match s.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => s.split_at(i),
        None => (s, "ms"),
    };
    let value: f64 = num
        .parse()
        .map_err(|_| format!("bad duration number in {s:?}"))?;
    if value < 0.0 {
        return Err(format!("negative duration {s:?}"));
    }
    let secs = match unit {
        "ns" => value / 1e9,
        "us" | "µs" => value / 1e6,
        "ms" => value / 1e3,
        "s" => value,
        "m" => value * 60.0,
        "h" => value * 3600.0,
        other => return Err(format!("unknown duration unit {other:?} in {s:?}")),
    };
    Ok(Duration::from_secs_f64(secs))
}

impl SloConfig {
    /// Parses the full spec string. Grammar (segments separated by `;`):
    ///
    /// ```text
    /// windows=<fast>/<slow>              — override evaluation windows
    /// <opcode>=<objective>[,<objective>] — declare objectives
    /// <objective> := <duration>@p<q>     — latency: q% within duration
    ///              | err<<pct>%          — error-rate ceiling
    /// ```
    pub fn parse(spec: &str) -> Result<SloConfig, String> {
        let mut config = SloConfig {
            objectives: Vec::new(),
            fast_window: DEFAULT_FAST_WINDOW,
            slow_window: DEFAULT_SLOW_WINDOW,
        };
        for segment in spec.split(';') {
            let segment = segment.trim();
            if segment.is_empty() {
                continue;
            }
            let (key, value) = segment
                .split_once('=')
                .ok_or_else(|| format!("expected <opcode>=<objective> in {segment:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "windows" {
                let (fast, slow) = value
                    .split_once('/')
                    .ok_or_else(|| format!("expected windows=<fast>/<slow>, got {value:?}"))?;
                config.fast_window = parse_duration(fast)?;
                config.slow_window = parse_duration(slow)?;
                if config.fast_window > config.slow_window {
                    return Err(format!("fast window {fast:?} exceeds slow window {slow:?}"));
                }
                continue;
            }
            if !KNOWN_OPCODES.contains(&key) {
                return Err(format!(
                    "unknown opcode {key:?} (expected one of {KNOWN_OPCODES:?})"
                ));
            }
            let mut objective = SloObjective {
                opcode: key.to_string(),
                latency: None,
                max_error_fraction: None,
            };
            for clause in value.split(',') {
                let clause = clause.trim();
                if let Some(pct) = clause
                    .strip_prefix("err<")
                    .and_then(|r| r.strip_suffix('%'))
                {
                    let pct: f64 = pct
                        .parse()
                        .map_err(|_| format!("bad error percentage in {clause:?}"))?;
                    if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
                        return Err(format!("error percentage out of (0, 100] in {clause:?}"));
                    }
                    objective.max_error_fraction = Some(pct / 100.0);
                } else if let Some((dur, q)) = clause.split_once("@p") {
                    let q: f64 = q
                        .parse()
                        .map_err(|_| format!("bad percentile in {clause:?}"))?;
                    if !(0.0..100.0).contains(&q) || q == 0.0 {
                        return Err(format!("percentile out of (0, 100) in {clause:?}"));
                    }
                    objective.latency = Some(LatencyObjective {
                        threshold: parse_duration(dur)?,
                        quantile: q / 100.0,
                    });
                } else {
                    return Err(format!(
                        "unparsable objective {clause:?} (want <dur>@p<q> or err<<pct>%)"
                    ));
                }
            }
            if objective.latency.is_none() && objective.max_error_fraction.is_none() {
                return Err(format!("opcode {key:?} declares no objective"));
            }
            config.objectives.push(objective);
        }
        if config.objectives.is_empty() {
            return Err("SLO spec declares no objectives".to_string());
        }
        Ok(config)
    }
}

/// Alert severity, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    Ok,
    Warning,
    Critical,
}

impl SloState {
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Critical => "critical",
        }
    }

    fn rank(self) -> u64 {
        match self {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Critical => 2,
        }
    }
}

/// One point of stored history: a snapshot of the opcode's lifetime
/// latency distribution plus its lifetime request and error counts. The
/// request counter (not the histogram count) is the error-rate
/// denominator, because refused requests (overload, expired deadlines)
/// are counted and answered without ever being timed.
struct Sample {
    at: Instant,
    snap: HistogramSnapshot,
    requests: u64,
    errors: u64,
}

/// Mutable evaluation state for one objective.
struct TargetState {
    samples: VecDeque<Sample>,
    state: SloState,
    /// Consecutive evaluations whose computed level differed from `state`.
    divergence_streak: u32,
    transitions: u64,
    since: Instant,
    fast_burn: f64,
    slow_burn: f64,
    /// Requests observed inside the slow window at the last evaluation.
    window_requests: u64,
}

/// One objective wired to its metric sources and exported gauges.
struct Target {
    objective: SloObjective,
    latency_series: Arc<Histogram>,
    requests_counter: Arc<Counter>,
    error_counter: Arc<Counter>,
    state_gauge: Arc<Gauge>,
    fast_burn_gauge: Arc<Gauge>,
    slow_burn_gauge: Arc<Gauge>,
    state: Mutex<TargetState>,
}

/// The SLO evaluation engine. Construct via [`configure_slo`] for the
/// process-wide instance (reading the global registry), or
/// [`SloEngine::with_registry`] in tests.
pub struct SloEngine {
    targets: Vec<Target>,
    fast_window: Duration,
    slow_window: Duration,
    /// Millis since `epoch` of the last stored sample, for rate limiting.
    last_sample_ms: mmdb_conc::sync::atomic::AtomicU64,
    epoch: Instant,
}

impl SloEngine {
    /// Builds an engine whose targets read (and create, if absent) the
    /// per-opcode series in `registry`.
    pub fn with_registry(config: SloConfig, registry: &Registry) -> SloEngine {
        let now = Instant::now();
        let targets = config
            .objectives
            .into_iter()
            .map(|objective| {
                let op = &objective.opcode;
                Target {
                    latency_series: registry.histogram(&format!(
                        "mmdb_server_request_latency_seconds{{opcode=\"{op}\"}}"
                    )),
                    requests_counter: registry
                        .counter(&format!("mmdb_server_requests_total{{opcode=\"{op}\"}}")),
                    error_counter: registry
                        .counter(&format!("mmdb_server_errors_total{{opcode=\"{op}\"}}")),
                    state_gauge: registry.gauge(&format!("mmdb_slo_state{{opcode=\"{op}\"}}")),
                    fast_burn_gauge: registry.gauge(&format!(
                        "mmdb_slo_burn_rate_milli{{opcode=\"{op}\",window=\"fast\"}}"
                    )),
                    slow_burn_gauge: registry.gauge(&format!(
                        "mmdb_slo_burn_rate_milli{{opcode=\"{op}\",window=\"slow\"}}"
                    )),
                    state: Mutex::new(TargetState {
                        samples: VecDeque::new(),
                        state: SloState::Ok,
                        divergence_streak: 0,
                        transitions: 0,
                        since: now,
                        fast_burn: 0.0,
                        slow_burn: 0.0,
                        window_requests: 0,
                    }),
                    objective,
                }
            })
            .collect();
        SloEngine {
            targets,
            fast_window: config.fast_window,
            slow_window: config.slow_window,
            last_sample_ms: mmdb_conc::sync::atomic::AtomicU64::new(u64::MAX),
            epoch: now,
        }
    }

    /// The configured evaluation windows `(fast, slow)`.
    pub fn windows(&self) -> (Duration, Duration) {
        (self.fast_window, self.slow_window)
    }

    /// Evaluates every objective against the current metric state. Cheap
    /// when called more often than [`SAMPLE_INTERVAL`]; the caller does not
    /// need its own timer.
    pub fn evaluate(&self) {
        self.evaluate_at(Instant::now());
    }

    /// [`evaluate`](Self::evaluate) with an explicit clock, for tests.
    pub fn evaluate_at(&self, now: Instant) {
        use mmdb_conc::sync::atomic::Ordering;
        let now_ms = now
            .saturating_duration_since(self.epoch)
            .as_millis()
            .min(u64::MAX as u128) as u64;
        let last = self.last_sample_ms.load(Ordering::Relaxed);
        if last != u64::MAX && now_ms.saturating_sub(last) < SAMPLE_INTERVAL.as_millis() as u64 {
            return;
        }
        if self
            .last_sample_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another evaluator claimed this interval
        }
        for target in &self.targets {
            self.evaluate_target(target, now);
        }
    }

    /// Burn rate of the window `[start, now]` diffed from stored history.
    fn window_burn(
        target: &Target,
        samples: &VecDeque<Sample>,
        current: &Sample,
        window: Duration,
    ) -> (f64, u64) {
        // The baseline is the most recent sample at or before the window
        // start; with a short history the oldest sample stands in (a
        // partially filled window — burn is computed over what exists).
        let start = current.at.checked_sub(window).unwrap_or(current.at);
        let baseline = samples
            .iter()
            .rev()
            .find(|s| s.at <= start)
            .or_else(|| samples.front());
        let (window_snap, window_requests, window_errors) = match baseline {
            Some(base) => (
                current.snap.diff(&base.snap),
                current.requests.saturating_sub(base.requests),
                current.errors.saturating_sub(base.errors),
            ),
            None => (current.snap.clone(), current.requests, current.errors),
        };
        // Refused requests are counted but never timed, so the two
        // denominators differ: latency burn is over timed (executed)
        // requests, error burn over everything answered.
        let executed = window_snap.count;
        let requests = window_requests.max(executed);
        if requests == 0 {
            return (0.0, 0);
        }
        let mut burn = 0.0f64;
        if let Some(lat) = target.objective.latency {
            if executed > 0 {
                let budget = (1.0 - lat.quantile).max(1e-9);
                burn = burn.max(window_snap.fraction_over(lat.threshold) / budget);
            }
        }
        if let Some(max_err) = target.objective.max_error_fraction {
            let err_fraction = window_errors as f64 / requests as f64;
            burn = burn.max(err_fraction / max_err.max(1e-9));
        }
        (burn, requests)
    }

    fn evaluate_target(&self, target: &Target, now: Instant) {
        let current = Sample {
            at: now,
            snap: target.latency_series.snapshot(),
            requests: target.requests_counter.get(),
            errors: target.error_counter.get(),
        };
        let mut st = target.state.lock();
        let (fast_burn, _) = Self::window_burn(target, &st.samples, &current, self.fast_window);
        let (slow_burn, window_requests) =
            Self::window_burn(target, &st.samples, &current, self.slow_window);
        st.fast_burn = fast_burn;
        st.slow_burn = slow_burn;
        st.window_requests = window_requests;

        // Multi-window rule: both windows must burn to raise. The minimum
        // implements "fast AND slow".
        let effective = fast_burn.min(slow_burn);
        let computed = if effective >= CRIT_BURN {
            SloState::Critical
        } else if effective >= WARN_BURN {
            SloState::Warning
        } else {
            SloState::Ok
        };
        let escalation = computed > st.state;
        if computed == st.state {
            st.divergence_streak = 0;
        } else {
            st.divergence_streak += 1;
        }
        // Hysteresis: escalate immediately, de-escalate only once the
        // calmer level has held for RECOVERY_EVALS evaluations.
        if escalation || (computed < st.state && st.divergence_streak >= RECOVERY_EVALS) {
            let from = st.state;
            st.state = computed;
            st.divergence_streak = 0;
            st.transitions += 1;
            st.since = now;
            if crate::instrumentation_enabled() {
                crate::recorder().record(
                    EventKind::SloStateChange,
                    format!(
                        "opcode={} {}: {}\u{2192}{} (fast burn {:.1}, slow burn {:.1})",
                        target.objective.opcode,
                        target.objective.describe(),
                        from.as_str(),
                        computed.as_str(),
                        fast_burn,
                        slow_burn,
                    ),
                    &[("state", computed.rank())],
                );
            }
        }
        target.state_gauge.set(st.state.rank());
        target.fast_burn_gauge.set(to_milli(fast_burn));
        target.slow_burn_gauge.set(to_milli(slow_burn));

        // Retain history covering the slow window (plus one baseline
        // sample beyond it) and store the new sample.
        st.samples.push_back(current);
        let horizon = now.checked_sub(self.slow_window).unwrap_or(now);
        while st
            .samples
            .iter()
            .take(2)
            .nth(1)
            .is_some_and(|second| second.at <= horizon)
        {
            st.samples.pop_front();
        }
        drop(st);
    }

    /// Worst current state across all objectives.
    pub fn worst_state(&self) -> SloState {
        self.targets
            .iter()
            .map(|t| t.state.lock().state)
            .max()
            .unwrap_or(SloState::Ok)
    }

    /// The state of one opcode's objective, if declared.
    pub fn state_of(&self, opcode: &str) -> Option<SloState> {
        self.targets
            .iter()
            .find(|t| t.objective.opcode == opcode)
            .map(|t| t.state.lock().state)
    }

    /// The `/alerts` endpoint body.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"configured\": true,");
        let _ = write!(
            out,
            "\n  \"fast_window_ms\": {},\n  \"slow_window_ms\": {},\n  \"alerts\": [",
            self.fast_window.as_millis(),
            self.slow_window.as_millis()
        );
        for (i, target) in self.targets.iter().enumerate() {
            let st = target.state.lock();
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"opcode\": \"{}\", \"objective\": \"{}\", \"state\": \"{}\", \
                 \"fast_burn\": {:.3}, \"slow_burn\": {:.3}, \"window_requests\": {}, \
                 \"transitions\": {}, \"since_ms\": {}}}",
                target.objective.opcode,
                target.objective.describe(),
                st.state.as_str(),
                st.fast_burn,
                st.slow_burn,
                st.window_requests,
                st.transitions,
                st.since.elapsed().as_millis(),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Burn rates exported as gauges in thousandths (gauges are integers).
fn to_milli(burn: f64) -> u64 {
    (burn * 1000.0).clamp(0.0, 1e15) as u64
}

static SLO: OnceLock<SloEngine> = OnceLock::new();

/// Installs the process-wide SLO engine (reading the global registry).
/// Returns `false` if one was already configured (first config wins — the
/// engine owns monotone alert history).
pub fn configure_slo(config: SloConfig) -> bool {
    SLO.set(SloEngine::with_registry(config, crate::global()))
        .is_ok()
}

/// The process-wide SLO engine, when one has been configured.
pub fn slo_engine() -> Option<&'static SloEngine> {
    SLO.get()
}

/// The `/alerts` body: the engine's JSON, or an explicit "not configured"
/// document so scrapers can distinguish "no SLOs" from "all quiet".
pub fn alerts_json() -> String {
    match slo_engine() {
        Some(engine) => {
            engine.evaluate();
            engine.render_json()
        }
        None => "{\n  \"configured\": false,\n  \"alerts\": []\n}\n".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let cfg = SloConfig::parse("range=5ms@p99,err<0.1%;knn=20ms@p95;windows=5s/30s").unwrap();
        assert_eq!(cfg.objectives.len(), 2);
        let range = &cfg.objectives[0];
        assert_eq!(range.opcode, "range");
        assert_eq!(
            range.latency,
            Some(LatencyObjective {
                threshold: Duration::from_millis(5),
                quantile: 0.99
            })
        );
        assert_eq!(range.max_error_fraction, Some(0.001));
        assert_eq!(cfg.objectives[1].latency.unwrap().quantile, 0.95);
        assert_eq!(cfg.fast_window, Duration::from_secs(5));
        assert_eq!(cfg.slow_window, Duration::from_secs(30));
        assert_eq!(range.describe(), "5ms@p99,err<0.1%");
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "",
            "range",
            "teleport=5ms@p99",
            "range=5ms",
            "range=5parsec@p99",
            "range=5ms@p0",
            "range=5ms@p100",
            "range=err<0%",
            "range=err<150%",
            "windows=10s/5s;range=5ms@p99",
            "windows=10s/5m",
        ] {
            assert!(SloConfig::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duration_units() {
        assert_eq!(parse_duration("250us").unwrap(), Duration::from_micros(250));
        assert_eq!(parse_duration("5ms").unwrap(), Duration::from_millis(5));
        assert_eq!(parse_duration("7").unwrap(), Duration::from_millis(7));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert!(parse_duration("5parsec").is_err());
    }

    /// Drives an engine through breach and recovery with a private
    /// registry and an artificial clock.
    #[test]
    fn burn_rate_trips_and_recovers_with_hysteresis() {
        let registry = Registry::default();
        let cfg = SloConfig::parse("range=1ms@p99;windows=1s/2s").unwrap();
        let engine = SloEngine::with_registry(cfg, &registry);
        let h = registry.histogram("mmdb_server_request_latency_seconds{opcode=\"range\"}");
        let start = Instant::now();
        let mut t = start;

        // Healthy traffic: fast requests, no burn.
        for step in 0..6 {
            for _ in 0..20 {
                h.observe(Duration::from_micros(100));
            }
            t += Duration::from_millis(400);
            engine.evaluate_at(t);
            assert_eq!(engine.state_of("range"), Some(SloState::Ok), "step {step}");
        }

        // Breach: every request blows the 1ms threshold → burn ≈ 100x
        // budget in both windows once they fill with bad samples.
        for _ in 0..8 {
            for _ in 0..20 {
                h.observe(Duration::from_millis(50));
            }
            t += Duration::from_millis(400);
            engine.evaluate_at(t);
        }
        assert_eq!(engine.state_of("range"), Some(SloState::Critical));
        assert_eq!(engine.worst_state(), SloState::Critical);

        // Quiet down: no new requests. The windows slide past the breach;
        // recovery needs RECOVERY_EVALS calm evaluations (hysteresis), so
        // the first calm evaluation must NOT de-escalate.
        t += Duration::from_millis(2500);
        engine.evaluate_at(t);
        assert_eq!(
            engine.state_of("range"),
            Some(SloState::Critical),
            "de-escalated without hysteresis"
        );
        for _ in 0..4 {
            t += Duration::from_millis(400);
            engine.evaluate_at(t);
        }
        assert_eq!(engine.state_of("range"), Some(SloState::Ok));
        let json = engine.render_json();
        assert!(json.contains("\"opcode\": \"range\""));
        assert!(json.contains("\"state\": \"ok\""));
        assert!(json.contains("\"transitions\": 2"));
    }

    /// Error-rate objectives burn independently of latency.
    #[test]
    fn error_rate_burns() {
        let registry = Registry::default();
        let cfg = SloConfig::parse("range=err<1%;windows=1s/2s").unwrap();
        let engine = SloEngine::with_registry(cfg, &registry);
        let h = registry.histogram("mmdb_server_request_latency_seconds{opcode=\"range\"}");
        let reqs = registry.counter("mmdb_server_requests_total{opcode=\"range\"}");
        let errs = registry.counter("mmdb_server_errors_total{opcode=\"range\"}");
        let start = Instant::now();
        let mut t = start;
        // 10% errors against a 1% budget → burn 10x in both windows.
        for _ in 0..8 {
            for i in 0..20 {
                h.observe(Duration::from_micros(100));
                reqs.inc();
                if i % 10 == 0 {
                    errs.inc();
                }
            }
            t += Duration::from_millis(400);
            engine.evaluate_at(t);
        }
        assert_eq!(engine.state_of("range"), Some(SloState::Critical));
        let json = engine.render_json();
        assert!(json.contains("err<1%"));
    }

    /// The rate limiter coalesces rapid evaluations into one sample.
    #[test]
    fn evaluation_is_rate_limited() {
        let registry = Registry::default();
        let cfg = SloConfig::parse("range=1ms@p99;windows=1s/2s").unwrap();
        let engine = SloEngine::with_registry(cfg, &registry);
        let t = Instant::now();
        engine.evaluate_at(t);
        engine.evaluate_at(t + Duration::from_millis(10));
        engine.evaluate_at(t + Duration::from_millis(20));
        let samples = engine.targets[0].state.lock().samples.len();
        assert_eq!(samples, 1, "rapid evaluations must coalesce");
    }

    #[test]
    fn unconfigured_alerts_json() {
        // The global engine may or may not be configured by other tests;
        // exercise only the explicit not-configured document shape.
        let doc = "{\n  \"configured\": false,\n  \"alerts\": []\n}\n";
        assert!(doc.contains("\"configured\": false"));
    }
}

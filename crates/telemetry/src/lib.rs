//! Unified telemetry for the MMDBMS: a lock-free metrics registry and a
//! lightweight per-query trace facility.
//!
//! # Metrics
//!
//! Named counters, gauges and fixed-bucket latency histograms, all backed by
//! `AtomicU64`. Handles are registered once in the global [`Registry`]
//! (`parking_lot::RwLock` protects only the name→handle map, never the hot
//! increment path) and cached per call site by the [`counter!`],
//! [`gauge!`] and [`histogram!`] macros, so steady-state cost is one relaxed
//! atomic RMW per increment.
//!
//! Naming scheme: `mmdb_<layer>_<what>_<unit/total>` with Prometheus-style
//! labels for per-variant series, e.g.
//! `mmdb_query_range_latency_seconds{plan="bwm"}` or
//! `mmdb_rules_applications_total{op="modify"}`.
//!
//! # Traces
//!
//! [`QueryTrace`] records a tree of stages (each with a wall-clock duration
//! and structured counters) plus query-level events such as the chosen plan.
//! Tracing is explicit: untraced query paths never build a trace, and
//! layer-internal stage timing is gated on [`tracing_enabled`] — a single
//! relaxed atomic load — so the disabled cost is near zero.
//!
//! # Always-on observability
//!
//! Three additional pieces form the always-on pipeline:
//!
//! * [`HistogramSnapshot`] — mergeable, diffable copies of histogram state
//!   with p50/p90/p99/max estimation;
//! * [`FlightRecorder`] (via [`recorder`]) — a fixed-capacity ring buffer of
//!   recent structured [`Event`]s (query start/end, slow queries, BWM
//!   reclassifications, ingest accept/reject, cache evictions), drainable
//!   as JSON;
//! * [`serve`] — a dependency-free HTTP server exposing `/metrics`
//!   (Prometheus text with histogram buckets), `/events`, and `/healthz`.
//!
//! Hot-path recording is gated on [`instrumentation_enabled`] so the bench
//! harness can measure (and bound) the instrumentation overhead.

mod fmt;
mod heat;
mod percentile;
pub mod profiler;
mod recorder;
mod registry;
mod server;
mod slo;
mod trace;
mod tracestore;

pub use fmt::format_duration;
pub use heat::{
    heat, heat_json, publish_heat_gauges, HeatEntry, HeatTable, DEFAULT_HEAT_HALF_LIFE,
    HEAT_MAX_BINS, HEAT_PLANS, HEAT_PROFILES,
};
pub use percentile::HistogramSnapshot;
pub use profiler::{
    collect_profile, profile_frame, register_profiler_thread, FrameGuard, ProfiledThread,
    DEFAULT_SAMPLE_HZ, MAX_PROFILE_DEPTH,
};
pub use recorder::{
    events_to_json, recorder, set_slow_query_threshold, slow_query_threshold, Event, EventKind,
    FlightRecorder, DEFAULT_RECORDER_CAPACITY, DEFAULT_SLOW_QUERY_THRESHOLD,
};
pub use registry::{global, Counter, Gauge, Histogram, Registry, Snapshot};
pub use server::{serve, serve_with, MetricsServer, PrerenderHook, ReadinessProbe, ServeOptions};
pub use slo::{
    alerts_json, configure_slo, slo_engine, LatencyObjective, SloConfig, SloEngine, SloObjective,
    SloState, CRIT_BURN, DEFAULT_FAST_WINDOW, DEFAULT_SLOW_WINDOW, WARN_BURN,
};
pub use trace::{QueryTrace, Span};
pub use tracestore::{
    next_trace_id, parse_trace_id, set_trace_keep_threshold, trace_keep_threshold, trace_store,
    KeepReason, StoredTrace, TraceContext, TraceStore, DEFAULT_TRACE_KEEP_THRESHOLD,
    DEFAULT_TRACE_STORE_CAPACITY,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// Both switches below use Relaxed loads/stores deliberately: they are
// standalone mode flags — no caller infers the state of other memory from
// a flag value, so no acquire/release pairing is needed.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Master switch for hot-path instrumentation (latency histograms, flight
/// recorder events, slow-query detection). On by default; the bench
/// harness's `overhead` mode turns it off to measure instrumentation cost.
static INSTRUMENTATION: AtomicBool = AtomicBool::new(true);

/// Enables or disables hot-path instrumentation process-wide.
pub fn set_instrumentation(enabled: bool) {
    INSTRUMENTATION.store(enabled, Ordering::Relaxed);
}

/// Whether hot-path instrumentation is on. A single relaxed load — safe to
/// call per query.
#[inline]
pub fn instrumentation_enabled() -> bool {
    INSTRUMENTATION.load(Ordering::Relaxed)
}

/// Globally enables or disables detailed stage timing inside query layers.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether detailed stage timing is on. A single relaxed load — safe to call
/// on hot paths.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// The instant the process first asked for it — call once early in `main`
/// so `mmdb_uptime_seconds` measures from startup rather than first scrape.
pub fn process_start() -> Instant {
    *PROCESS_START.get_or_init(Instant::now)
}

/// Registers the `mmdb_build_info{version=...,profile=...}` info series
/// (constant 1, identity carried in labels — the Prometheus convention for
/// correlating perf changes with builds) and pins the uptime epoch.
pub fn register_build_info(version: &str, build_profile: &str) {
    global()
        .gauge(&format!(
            "mmdb_build_info{{version=\"{version}\",profile=\"{build_profile}\"}}"
        ))
        .set(1);
    let _ = process_start();
    update_uptime();
}

/// Refreshes the `mmdb_uptime_seconds` gauge; the exposition server calls
/// this before every `/metrics` render so scrapes can detect restarts.
pub fn update_uptime() {
    gauge!("mmdb_uptime_seconds").set(process_start().elapsed().as_secs());
}

/// Get-or-register a counter in the global registry, caching the handle at
/// the call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Get-or-register a gauge in the global registry, caching the handle at the
/// call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Get-or-register a latency histogram in the global registry, caching the
/// handle at the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_toggle() {
        assert!(!tracing_enabled());
        set_tracing(true);
        assert!(tracing_enabled());
        set_tracing(false);
        assert!(!tracing_enabled());
    }

    #[test]
    fn instrumentation_defaults_on_and_toggles() {
        assert!(instrumentation_enabled());
        set_instrumentation(false);
        assert!(!instrumentation_enabled());
        set_instrumentation(true);
        assert!(instrumentation_enabled());
    }

    #[test]
    fn macros_cache_handles() {
        let a = counter!("mmdb_test_macro_counter_total") as *const Counter;
        let b = counter!("mmdb_test_macro_counter_total") as *const Counter;
        assert_eq!(a, b);
        counter!("mmdb_test_macro_counter_total").inc();
        gauge!("mmdb_test_macro_gauge").set(3);
        histogram!("mmdb_test_macro_latency_seconds").observe(std::time::Duration::from_micros(30));
        let text = global().render_prometheus();
        assert!(text.contains("mmdb_test_macro_counter_total"));
        assert!(text.contains("mmdb_test_macro_gauge 3"));
    }
}

//! The flight recorder: a fixed-capacity ring buffer of recent structured
//! events (query start/end, slow queries, BWM reclassifications, ingest
//! accept/reject, cache evictions), always on and drainable as JSON.
//!
//! Writers never contend on a global lock: recording takes the ring's
//! *read* lock (shared), claims a slot with one `fetch_add` on the head
//! sequence, and writes through that slot's own mutex. The write lock is
//! taken only by [`FlightRecorder::set_capacity`], which rebuilds the ring.

use mmdb_conc::sync::atomic::{AtomicU64, Ordering};
use mmdb_conc::sync::{Mutex, RwLock};
use std::sync::OnceLock;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Default ring capacity; reconfigurable via [`FlightRecorder::set_capacity`].
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

/// Default slow-query threshold (see [`set_slow_query_threshold`]).
pub const DEFAULT_SLOW_QUERY_THRESHOLD: Duration = Duration::from_millis(250);

/// What happened — the closed set of event types the recorder captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A range/knn query started executing.
    QueryStart,
    /// A query finished; counts carry result and bounds-check totals.
    QueryEnd,
    /// A query exceeded the configured slow-query threshold.
    SlowQuery,
    /// Removing a base image orphaned edited images back to Unclassified.
    BwmReclassified,
    /// An edit-sequence insert passed ingest validation.
    IngestAccepted,
    /// An edit-sequence insert was rejected; detail lists the lint codes.
    IngestRejected,
    /// The raster LRU evicted entries to admit a new instantiation.
    CacheEviction,
    /// A catalog-wide lint (analyzer) run completed.
    LintRun,
    /// The query server accepted a client connection.
    ServerConnAccepted,
    /// Admission control refused a request (submission queue full).
    ServerOverload,
    /// A request's deadline expired while queued; it was not executed.
    ServerDeadlineExceeded,
    /// The query server began or completed a graceful drain.
    ServerDrain,
    /// A backend call panicked; the worker caught it and answered INTERNAL.
    ServerBackendPanic,
    /// An SLO objective changed alert state (ok/warning/critical); the
    /// detail carries the objective, direction, and both burn rates.
    SloStateChange,
    /// The write-ahead log finished a segment and started a new one.
    WalRotation,
    /// A catalog snapshot was written and renamed into place.
    Snapshot,
    /// Crash recovery completed: snapshot load + WAL-tail replay.
    Recovery,
    /// A serving process drained, flushed a final snapshot, and synced the
    /// active WAL segment before exiting.
    ServerCleanShutdown,
}

impl EventKind {
    /// Stable snake_case name used in JSON exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::QueryStart => "query_start",
            EventKind::QueryEnd => "query_end",
            EventKind::SlowQuery => "slow_query",
            EventKind::BwmReclassified => "bwm_reclassified",
            EventKind::IngestAccepted => "ingest_accepted",
            EventKind::IngestRejected => "ingest_rejected",
            EventKind::CacheEviction => "cache_eviction",
            EventKind::LintRun => "lint_run",
            EventKind::ServerConnAccepted => "server_conn_accepted",
            EventKind::ServerOverload => "server_overload",
            EventKind::ServerDeadlineExceeded => "server_deadline_exceeded",
            EventKind::ServerDrain => "server_drain",
            EventKind::ServerBackendPanic => "server_backend_panic",
            EventKind::SloStateChange => "slo_state_change",
            EventKind::WalRotation => "wal_rotation",
            EventKind::Snapshot => "snapshot",
            EventKind::Recovery => "recovery",
            EventKind::ServerCleanShutdown => "server_clean_shutdown",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (process-lifetime, survives capacity
    /// changes); total order across threads.
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch.
    pub unix_micros: u64,
    pub kind: EventKind,
    /// Free-form human-readable context, e.g. `plan=bwm bin=12`.
    pub detail: String,
    /// Structured numeric payload, e.g. `[("results", 3)]`.
    pub counts: Vec<(&'static str, u64)>,
}

struct Ring {
    slots: Vec<Mutex<Option<Event>>>,
    head: AtomicU64,
}

impl Ring {
    fn with_capacity(capacity: usize, head: u64) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(head),
        }
    }
}

/// The ring buffer itself. One process-global instance lives behind
/// [`recorder`]; independent instances are used in tests.
pub struct FlightRecorder {
    ring: RwLock<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            ring: RwLock::new(Ring::with_capacity(capacity, 0)),
        }
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.read().slots.len()
    }

    /// Resizes the ring, preserving the most recent events that fit. Takes
    /// the write lock; concurrent writers block only for the rebuild.
    pub fn set_capacity(&self, capacity: usize) {
        let mut guard = self.ring.write();
        let recent = drain_ring(&guard);
        let head = guard.head.load(Ordering::Relaxed);
        let next = Ring::with_capacity(capacity, head);
        let keep = recent.len().saturating_sub(next.slots.len());
        for event in recent.into_iter().skip(keep) {
            let idx = (event.seq % next.slots.len() as u64) as usize;
            *next.slots[idx].lock() = Some(event);
        }
        *guard = next;
    }

    /// Records one event. Hot paths should gate the call (and the string
    /// formatting feeding it) on [`crate::instrumentation_enabled`].
    pub fn record(
        &self,
        kind: EventKind,
        detail: impl Into<String>,
        counts: &[(&'static str, u64)],
    ) {
        let ring = self.ring.read();
        // Relaxed is deliberate: the RMW alone makes seq values unique and
        // totally ordered; the event itself is published by the slot mutex
        // below (its unlock/lock is the release/acquire edge drainers rely
        // on), so the head counter orders nothing but itself. Model-checked
        // in crates/conc/tests/model_ring.rs.
        let seq = ring.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % ring.slots.len() as u64) as usize;
        let event = Event {
            seq,
            unix_micros: unix_micros_now(),
            kind,
            detail: detail.into(),
            counts: counts.to_vec(),
        };
        let mut slot = ring.slots[idx].lock();
        // Guard against a lapped race: between seq assignment and slot
        // publication another writer may have lapped the ring and published
        // a *newer* event into this slot; clobbering it would lose the
        // newest event while retaining an older one (found by the model
        // checker — see crates/conc/tests/model_ring.rs).
        if slot.as_ref().is_none_or(|existing| existing.seq < seq) {
            *slot = Some(event);
        }
    }

    /// The retained events, oldest first. Slots being overwritten by racing
    /// writers at drain time are skipped, so the result is always a
    /// consistent (possibly slightly shorter) suffix of the event stream.
    pub fn events(&self) -> Vec<Event> {
        drain_ring(&self.ring.read())
    }

    /// Retained events with `seq > since`, oldest first — the cursor form
    /// pollers use: pass the highest `seq` seen so far and events are
    /// neither dropped (as long as the ring hasn't lapped) nor re-read.
    /// `events_since(u64::MAX)` is always empty; `events_since` with a
    /// cursor older than the ring returns everything retained.
    pub fn events_since(&self, since: u64) -> Vec<Event> {
        let mut events = self.events();
        events.retain(|e| e.seq > since);
        events
    }

    /// Total number of events ever recorded (including overwritten ones).
    pub fn recorded_total(&self) -> u64 {
        self.ring.read().head.load(Ordering::Relaxed)
    }

    /// All retained events as a JSON document (see [`events_to_json`]).
    pub fn render_json(&self) -> String {
        events_to_json(&self.events())
    }
}

fn drain_ring(ring: &Ring) -> Vec<Event> {
    let head = ring.head.load(Ordering::Relaxed);
    let cap = ring.slots.len() as u64;
    let start = head.saturating_sub(cap);
    let mut out = Vec::with_capacity((head - start) as usize);
    for seq in start..head {
        let idx = (seq % cap) as usize;
        let slot = ring.slots[idx].lock();
        if let Some(event) = slot.as_ref() {
            // A racing writer may have lapped this slot (newer seq) or not
            // finished publishing yet (older seq); keep only exact matches.
            if event.seq == seq {
                out.push(event.clone());
            }
        }
    }
    out
}

fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders events as `{"events": [...]}` with one object per event:
/// `{"seq": 5, "ts_micros": ..., "kind": "query_end", "detail": "...",
/// "counts": {"results": 3}}`.
pub fn events_to_json(events: &[Event]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"events\": [");
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"seq\": {}, \"ts_micros\": {}, \"kind\": \"{}\", \"detail\": \"{}\", \"counts\": {{",
            e.seq,
            e.unix_micros,
            e.kind.as_str(),
            escape_json(&e.detail)
        );
        for (j, (name, value)) in e.counts.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {value}", escape_json(name));
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

// Relaxed throughout: a standalone tuning knob — no reader infers other
// memory state from its value.
static SLOW_QUERY_NANOS: AtomicU64 = AtomicU64::new(250_000_000);

/// Sets the process-wide slow-query threshold: queries at or above it emit a
/// [`EventKind::SlowQuery`] event and bump `mmdb_query_slow_total`.
pub fn set_slow_query_threshold(threshold: Duration) {
    let nanos = threshold.as_nanos().min(u64::MAX as u128) as u64;
    SLOW_QUERY_NANOS.store(nanos, Ordering::Relaxed);
}

/// The current slow-query threshold (default 250ms).
pub fn slow_query_threshold() -> Duration {
    Duration::from_nanos(SLOW_QUERY_NANOS.load(Ordering::Relaxed))
}

static GLOBAL_RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder all instrumented layers report into.
pub fn recorder() -> &'static FlightRecorder {
    GLOBAL_RECORDER.get_or_init(FlightRecorder::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_drains() {
        let r = FlightRecorder::with_capacity(8);
        r.record(EventKind::QueryStart, "plan=rbm", &[]);
        r.record(EventKind::QueryEnd, "plan=rbm", &[("results", 3)]);
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::QueryStart);
        assert_eq!(events[1].kind, EventKind::QueryEnd);
        assert_eq!(events[1].counts, vec![("results", 3)]);
        assert!(events[0].seq < events[1].seq);
        assert_eq!(r.recorded_total(), 2);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.record(EventKind::QueryEnd, format!("q{i}"), &[("i", i)]);
        }
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].detail, "q6");
        assert_eq!(events[3].detail, "q9");
        assert_eq!(r.recorded_total(), 10);
    }

    #[test]
    fn capacity_change_preserves_recent_events() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..6u64 {
            r.record(EventKind::QueryEnd, format!("q{i}"), &[]);
        }
        r.set_capacity(3);
        assert_eq!(r.capacity(), 3);
        let kept: Vec<String> = r.events().iter().map(|e| e.detail.clone()).collect();
        assert_eq!(kept, vec!["q3", "q4", "q5"]);
        // Growing back keeps what survived and new sequence numbers continue.
        r.set_capacity(16);
        r.record(EventKind::QueryEnd, "q6", &[]);
        let events = r.events();
        assert_eq!(events.last().unwrap().detail, "q6");
        assert_eq!(events.last().unwrap().seq, 6);
    }

    #[test]
    fn events_since_is_an_exclusive_cursor() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..5u64 {
            r.record(EventKind::QueryEnd, format!("q{i}"), &[]);
        }
        let all = r.events();
        let cursor = all[2].seq;
        let tail: Vec<String> = r
            .events_since(cursor)
            .iter()
            .map(|e| e.detail.clone())
            .collect();
        assert_eq!(tail, vec!["q3", "q4"]);
        assert!(r.events_since(u64::MAX).is_empty());
        // A cursor older than anything retained returns the full ring.
        assert_eq!(r.events_since(0).len(), 4);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        r.record(EventKind::LintRun, "x", &[]);
        assert_eq!(r.events().len(), 1);
    }

    #[test]
    fn json_exposition_escapes_and_structures() {
        let r = FlightRecorder::with_capacity(4);
        r.record(
            EventKind::IngestRejected,
            "codes=\"E002\"",
            &[("errors", 1)],
        );
        let json = r.render_json();
        assert!(json.contains("\"kind\": \"ingest_rejected\""));
        assert!(json.contains("codes=\\\"E002\\\""));
        assert!(json.contains("\"counts\": {\"errors\": 1}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn slow_query_threshold_roundtrip() {
        let before = slow_query_threshold();
        set_slow_query_threshold(Duration::from_millis(5));
        assert_eq!(slow_query_threshold(), Duration::from_millis(5));
        set_slow_query_threshold(before);
    }
}

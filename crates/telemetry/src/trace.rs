//! Per-query traces: a tree of timed stages with structured counters and
//! events, rendered as an `explain`-style tree.

use std::fmt::Write as _;
use std::time::Duration;

/// One timed stage of a query, possibly with nested sub-stages.
#[derive(Clone, Debug, Default)]
pub struct Span {
    pub name: String,
    pub duration: Duration,
    /// Structured counters observed during this stage, in insertion order.
    pub counters: Vec<(String, u64)>,
    pub children: Vec<Span>,
}

impl Span {
    pub fn new(name: impl Into<String>, duration: Duration) -> Self {
        Span {
            name: name.into(),
            duration,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Records a counter on this span (builder-style).
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Nests a child stage (builder-style); returns the child for further
    /// decoration.
    pub fn child(&mut self, span: Span) -> &mut Span {
        self.children.push(span);
        self.children.last_mut().expect("just pushed")
    }

    fn find(&self, counter: &str) -> Option<u64> {
        if let Some((_, v)) = self.counters.iter().find(|(n, _)| n == counter) {
            return Some(*v);
        }
        self.children.iter().find_map(|c| c.find(counter))
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let (branch, next_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let _ = write!(out, "{branch}{} [{:?}]", self.name, self.duration);
        if !self.counters.is_empty() {
            let rendered: Vec<String> = self
                .counters
                .iter()
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            let _ = write!(out, "  {}", rendered.join(" "));
        }
        out.push('\n');
        let n = self.children.len();
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &next_prefix, i + 1 == n, false);
        }
    }
}

/// A completed (or in-progress) query trace: query-level events plus the
/// stage tree.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    root: Span,
    /// Query-level key/value events (plan chosen, thresholds, …), in
    /// insertion order.
    pub events: Vec<(String, String)>,
}

impl QueryTrace {
    pub fn new(name: impl Into<String>) -> Self {
        QueryTrace {
            root: Span::new(name, Duration::ZERO),
            events: Vec::new(),
        }
    }

    /// Records a query-level event such as `plan=bwm`.
    pub fn event(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.events.push((key.into(), value.into()));
    }

    /// Adds a top-level stage; returns it for counters/children.
    pub fn stage(&mut self, name: impl Into<String>, duration: Duration) -> &mut Span {
        self.root.child(Span::new(name, duration))
    }

    /// Records a query-level counter on the root span.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.root.counter(name, value);
    }

    /// Sets the total query duration.
    pub fn finish(&mut self, total: Duration) {
        self.root.duration = total;
    }

    /// The root span of the stage tree.
    pub fn root(&self) -> &Span {
        &self.root
    }

    /// Looks a counter up anywhere in the tree (root first, then depth
    /// first) — handy for asserting trace contents in tests.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.root.find(name)
    }

    /// Renders the trace as an indented tree, events first:
    ///
    /// ```text
    /// plan=bwm
    /// range_query [1.2ms]  results=42
    /// ├─ main_component [800µs]  clusters_visited=30
    /// └─ unclassified [150µs]  scanned=15
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.events {
            let _ = writeln!(out, "{k}={v}");
        }
        self.root.render_into(&mut out, "", true, true);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_tree() {
        let mut t = QueryTrace::new("range_query");
        t.event("plan", "bwm");
        t.counter("results", 42);
        t.stage("main_component", Duration::from_micros(800))
            .counter("clusters_visited", 30)
            .counter("bounds_computed", 25);
        t.stage("unclassified", Duration::from_micros(150))
            .counter("scanned", 15);
        t.finish(Duration::from_millis(1));

        assert_eq!(t.counter_value("results"), Some(42));
        assert_eq!(t.counter_value("clusters_visited"), Some(30));
        assert_eq!(t.counter_value("scanned"), Some(15));
        assert_eq!(t.counter_value("nope"), None);

        let text = t.render();
        assert!(text.starts_with("plan=bwm\n"));
        assert!(text.contains("range_query"));
        assert!(text.contains("├─ main_component"));
        assert!(text.contains("└─ unclassified"));
        assert!(text.contains("clusters_visited=30"));
    }

    #[test]
    fn nested_children_render_with_guides() {
        let mut t = QueryTrace::new("q");
        let stage = t.stage("outer", Duration::from_micros(10));
        stage.child(Span::new("inner_a", Duration::from_micros(4)));
        stage.child(Span::new("inner_b", Duration::from_micros(5)));
        let text = t.render();
        assert!(text.contains("   ├─ inner_a"));
        assert!(text.contains("   └─ inner_b"));
    }
}

//! Per-query traces: a tree of timed stages with structured counters and
//! events, rendered as an `explain`-style tree.

use std::fmt::Write as _;
use std::time::Duration;

/// One timed stage of a query, possibly with nested sub-stages.
#[derive(Clone, Debug, Default)]
pub struct Span {
    pub name: String,
    pub duration: Duration,
    /// Structured counters observed during this stage, in insertion order.
    pub counters: Vec<(String, u64)>,
    pub children: Vec<Span>,
}

impl Span {
    pub fn new(name: impl Into<String>, duration: Duration) -> Self {
        Span {
            name: name.into(),
            duration,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Records a counter on this span (builder-style).
    pub fn counter(&mut self, name: impl Into<String>, value: u64) -> &mut Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Nests a child stage (builder-style); returns the child for further
    /// decoration.
    pub fn child(&mut self, span: Span) -> &mut Span {
        self.children.push(span);
        self.children.last_mut().expect("just pushed")
    }

    /// Breadth-first counter lookup: the shallowest span carrying `counter`
    /// wins, with left-to-right order breaking ties at equal depth. This is
    /// deterministic regardless of how deep child stages duplicate a name.
    fn find(&self, counter: &str) -> Option<u64> {
        let mut queue = std::collections::VecDeque::from([self]);
        while let Some(span) = queue.pop_front() {
            if let Some((_, v)) = span.counters.iter().find(|(n, _)| n == counter) {
                return Some(*v);
            }
            queue.extend(span.children.iter());
        }
        None
    }

    /// This span's counters with repeated names removed (first occurrence
    /// wins) — layers occasionally re-report a counter when retrying a
    /// stage, and rendering both would just be noise.
    fn deduped_counters(&self) -> Vec<&(String, u64)> {
        let mut seen = std::collections::BTreeSet::new();
        self.counters
            .iter()
            .filter(|(n, _)| seen.insert(n.as_str()))
            .collect()
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let (branch, next_prefix) = if root {
            (String::new(), String::new())
        } else if last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let _ = write!(
            out,
            "{branch}{} [{}]",
            self.name,
            crate::format_duration(self.duration)
        );
        let counters = self.deduped_counters();
        if !counters.is_empty() {
            let rendered: Vec<String> = counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
            let _ = write!(out, "  {}", rendered.join(" "));
        }
        out.push('\n');
        let n = self.children.len();
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &next_prefix, i + 1 == n, false);
        }
    }

    fn render_json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"duration_nanos\": {}, \"duration\": \"{}\", \"counters\": {{",
            json_escape(&self.name),
            self.duration.as_nanos(),
            crate::format_duration(self.duration)
        );
        for (i, (name, value)) in self.deduped_counters().iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {value}", json_escape(name));
        }
        out.push_str("}, \"children\": [");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            child.render_json_into(out);
        }
        out.push_str("]}");
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A completed (or in-progress) query trace: query-level events plus the
/// stage tree.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    root: Span,
    /// Query-level key/value events (plan chosen, thresholds, …), in
    /// insertion order.
    pub events: Vec<(String, String)>,
}

impl QueryTrace {
    pub fn new(name: impl Into<String>) -> Self {
        QueryTrace {
            root: Span::new(name, Duration::ZERO),
            events: Vec::new(),
        }
    }

    /// Records a query-level event such as `plan=bwm`.
    pub fn event(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.events.push((key.into(), value.into()));
    }

    /// Adds a top-level stage; returns it for counters/children.
    pub fn stage(&mut self, name: impl Into<String>, duration: Duration) -> &mut Span {
        self.root.child(Span::new(name, duration))
    }

    /// Records a query-level counter on the root span.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.root.counter(name, value);
    }

    /// Sets the total query duration.
    pub fn finish(&mut self, total: Duration) {
        self.root.duration = total;
    }

    /// The root span of the stage tree.
    pub fn root(&self) -> &Span {
        &self.root
    }

    /// Looks a counter up anywhere in the tree, breadth first: the
    /// shallowest span carrying `name` wins, ties at equal depth resolve
    /// left-to-right. Handy for asserting trace contents in tests.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.root.find(name)
    }

    /// Finds a span by name anywhere in the tree, breadth first (shallowest
    /// match wins, left-to-right at equal depth). Used by trace consumers
    /// to pull out well-known stages such as `queue_wait`.
    pub fn span(&self, name: &str) -> Option<&Span> {
        let mut queue = std::collections::VecDeque::from([&self.root]);
        while let Some(span) = queue.pop_front() {
            if span.name == name {
                return Some(span);
            }
            queue.extend(span.children.iter());
        }
        None
    }

    /// Renders the trace as an indented tree, events first:
    ///
    /// ```text
    /// plan=bwm
    /// range_query [1.2ms]  results=42
    /// ├─ main_component [800µs]  clusters_visited=30
    /// └─ unclassified [150µs]  scanned=15
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.events {
            let _ = writeln!(out, "{k}={v}");
        }
        self.root.render_into(&mut out, "", true, true);
        out
    }

    /// Serializes the whole trace — events plus the span tree, counters
    /// included — as a JSON document suitable for diffing and archiving:
    ///
    /// ```json
    /// {"events": [["plan", "bwm"]],
    ///  "root": {"name": "bwm_range", "duration_nanos": 1200000,
    ///           "duration": "1.20ms", "counters": {"results": 42},
    ///           "children": [...]}}
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"events\": [");
        for (i, (k, v)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[\"{}\", \"{}\"]", json_escape(k), json_escape(v));
        }
        out.push_str("], \"root\": ");
        self.root.render_json_into(&mut out);
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_tree() {
        let mut t = QueryTrace::new("range_query");
        t.event("plan", "bwm");
        t.counter("results", 42);
        t.stage("main_component", Duration::from_micros(800))
            .counter("clusters_visited", 30)
            .counter("bounds_computed", 25);
        t.stage("unclassified", Duration::from_micros(150))
            .counter("scanned", 15);
        t.finish(Duration::from_millis(1));

        assert_eq!(t.counter_value("results"), Some(42));
        assert_eq!(t.counter_value("clusters_visited"), Some(30));
        assert_eq!(t.counter_value("scanned"), Some(15));
        assert_eq!(t.counter_value("nope"), None);

        let text = t.render();
        assert!(text.starts_with("plan=bwm\n"));
        assert!(text.contains("range_query"));
        assert!(text.contains("├─ main_component"));
        assert!(text.contains("└─ unclassified"));
        assert!(text.contains("clusters_visited=30"));
    }

    #[test]
    fn find_prefers_shallowest_match() {
        let mut t = QueryTrace::new("q");
        // The same counter name appears at depth 1 (twice) and depth 2;
        // breadth-first search must return the first depth-1 value.
        let a = t.stage("a", Duration::from_micros(1));
        a.child(Span::new("a_deep", Duration::from_micros(1)))
            .counter("dup", 999);
        t.stage("b", Duration::from_micros(1)).counter("dup", 7);
        t.stage("c", Duration::from_micros(1)).counter("dup", 8);
        assert_eq!(t.counter_value("dup"), Some(7));
        // A root-level counter beats any child.
        t.counter("dup", 1);
        assert_eq!(t.counter_value("dup"), Some(1));
    }

    #[test]
    fn span_lookup_finds_nested_stages() {
        let mut t = QueryTrace::new("request");
        t.stage("queue_wait", Duration::from_micros(40));
        let exec = t.stage("execute", Duration::from_micros(500));
        exec.child(Span::new("index_lookup", Duration::from_micros(300)));
        assert_eq!(t.span("request").unwrap().name, "request");
        assert_eq!(
            t.span("queue_wait").unwrap().duration,
            Duration::from_micros(40)
        );
        assert_eq!(
            t.span("index_lookup").unwrap().duration,
            Duration::from_micros(300)
        );
        assert!(t.span("nope").is_none());
    }

    #[test]
    fn render_dedupes_repeated_counter_names() {
        let mut t = QueryTrace::new("q");
        t.stage("s", Duration::from_micros(5))
            .counter("hits", 3)
            .counter("hits", 9)
            .counter("misses", 1);
        let text = t.render();
        // First occurrence wins; the duplicate is not printed.
        assert!(text.contains("hits=3"));
        assert!(!text.contains("hits=9"));
        assert!(text.contains("misses=1"));
    }

    #[test]
    fn renders_human_durations() {
        let mut t = QueryTrace::new("q");
        t.stage("s", Duration::from_nanos(22_400));
        t.finish(Duration::from_millis(2));
        let text = t.render();
        assert!(text.contains("q [2.00ms]"), "{text}");
        assert!(text.contains("s [22.40µs]"), "{text}");
    }

    #[test]
    fn render_json_roundtrips_structure() {
        let mut t = QueryTrace::new("bwm_range");
        t.event("plan", "bwm");
        t.counter("results", 42);
        t.stage("main_component", Duration::from_micros(800))
            .counter("clusters_visited", 30);
        t.finish(Duration::from_micros(1200));
        let json = t.render_json();
        assert!(json.contains("\"events\": [[\"plan\", \"bwm\"]]"));
        assert!(json.contains("\"name\": \"bwm_range\""));
        assert!(json.contains("\"duration_nanos\": 1200000"));
        assert!(json.contains("\"duration\": \"1.20ms\""));
        assert!(json.contains("\"results\": 42"));
        assert!(json.contains("\"clusters_visited\": 30"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn nested_children_render_with_guides() {
        let mut t = QueryTrace::new("q");
        let stage = t.stage("outer", Duration::from_micros(10));
        stage.child(Span::new("inner_a", Duration::from_micros(4)));
        stage.child(Span::new("inner_b", Duration::from_micros(5)));
        let text = t.render();
        assert!(text.contains("   ├─ inner_a"));
        assert!(text.contains("   └─ inner_b"));
    }
}

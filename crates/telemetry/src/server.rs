//! A dependency-free metrics exposition server over `std::net`.
//!
//! Serves the observability surface on a background accept thread, one
//! handler thread per connection (so a long-running `/debug/profile`
//! capture never starves a concurrent Prometheus scrape):
//!
//! * `/metrics` — the global registry in Prometheus text format
//!   (`?format=json` switches to the JSON exposition),
//! * `/events`  — the flight recorder's retained events as JSON;
//!   `?since=<seq>` returns only events with a larger sequence number so
//!   pollers can cursor through the stream without drops or double-reads,
//! * `/healthz` — pure liveness probe (`ok` as long as the process serves),
//! * `/readyz`  — readiness probe: runs the embedder-supplied
//!   [`ReadinessProbe`] and answers 503 until it reports ready,
//! * `/heat` — ranked query-heat entries as JSON (`?limit=N` truncates),
//! * `/alerts` — SLO burn-rate alert states as JSON (evaluating on read),
//! * `/traces` — tail-sampled trace store summaries (newest first),
//! * `/traces/<id>` — one trace's full span tree by hex id,
//! * `/debug/profile?seconds=N` — blocks for N seconds (1–30, default 5)
//!   sampling registered threads, answering collapsed-stack text.
//!
//! The server is deliberately minimal HTTP/1.1: it parses the request line,
//! drains headers, answers with `Connection: close`, and handles one request
//! per connection — exactly what a Prometheus scraper or `curl` needs, with
//! zero dependencies beyond `std::net::TcpListener`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Callback run before each `/metrics` render, letting the embedder flush
/// thread-local staging (e.g. `mmdb_rules::flush_metrics`) so scrapes see
/// exact totals.
pub type PrerenderHook = Arc<dyn Fn() + Send + Sync>;

/// Readiness callback for `/readyz`: `Ok(detail)` answers 200, `Err(detail)`
/// answers 503. Called per probe, so keep it cheap (a couple of atomic
/// loads, not a catalog walk).
pub type ReadinessProbe = Arc<dyn Fn() -> Result<String, String> + Send + Sync>;

/// Embedder configuration for [`serve_with`].
#[derive(Clone, Default)]
pub struct ServeOptions {
    /// Runs before each `/metrics` render.
    pub prerender: Option<PrerenderHook>,
    /// Backs `/readyz`; when absent the server reports ready unconditionally
    /// (liveness and readiness coincide for embedders with no warm-up).
    pub readiness: Option<ReadinessProbe>,
}

/// Longest `/debug/profile` capture window we accept; anything larger is
/// clamped so a stray request can't pin a handler thread for minutes.
const MAX_PROFILE_SECONDS: u64 = 30;

/// Ranked entries `/heat` returns when no `?limit=` is given.
const DEFAULT_HEAT_LIMIT: usize = 50;

/// A running exposition server; dropping it shuts the accept loop down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a self-connection wakes it so
        // it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, or `:0` for an ephemeral port) and
/// serves the observability routes from a background thread. Compatibility
/// wrapper over [`serve_with`] for embedders without a readiness probe.
pub fn serve(addr: &str, prerender: Option<PrerenderHook>) -> std::io::Result<MetricsServer> {
    serve_with(
        addr,
        ServeOptions {
            prerender,
            readiness: None,
        },
    )
}

/// Binds `addr` and serves the observability routes with full embedder
/// configuration. In-flight handler threads are detached; they answer one
/// request each and exit on their own socket timeouts.
pub fn serve_with(addr: &str, options: ServeOptions) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("mmdb-metrics-server".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let conn_options = options.clone();
                    let spawned = std::thread::Builder::new()
                        .name("mmdb-metrics-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &conn_options);
                        });
                    // Spawn failure (thread exhaustion) drops the connection;
                    // the scraper retries on its next interval.
                    drop(spawned);
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn handle_connection(stream: TcpStream, options: &ServeOptions) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; the bodyless GETs we serve need
    // nothing from them.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let (status, content_type, body) = route(method, path, query, options);
    respond(stream, status, content_type, &body)
}

/// The value of `key` in an `a=1&b=2` query string, if present.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn route(
    method: &str,
    path: &str,
    query: &str,
    options: &ServeOptions,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/readyz" => match &options.readiness {
            None => ("200 OK", "text/plain", "ready\n".to_string()),
            Some(probe) => match probe() {
                Ok(detail) => ("200 OK", "text/plain", format!("ready: {detail}\n")),
                Err(detail) => (
                    "503 Service Unavailable",
                    "text/plain",
                    format!("unready: {detail}\n"),
                ),
            },
        },
        "/metrics" => {
            crate::update_uptime();
            if let Some(hook) = &options.prerender {
                hook();
            }
            if query.split('&').any(|kv| kv == "format=json") {
                ("200 OK", "application/json", crate::global().render_json())
            } else {
                (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    crate::global().render_prometheus(),
                )
            }
        }
        "/events" => match query_param(query, "since") {
            None => (
                "200 OK",
                "application/json",
                crate::recorder().render_json(),
            ),
            Some(raw) => match raw.parse::<u64>() {
                Ok(since) => (
                    "200 OK",
                    "application/json",
                    crate::events_to_json(&crate::recorder().events_since(since)),
                ),
                Err(_) => (
                    "400 Bad Request",
                    "text/plain",
                    "since must be a decimal sequence number\n".to_string(),
                ),
            },
        },
        "/heat" => {
            let limit = query_param(query, "limit")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(DEFAULT_HEAT_LIMIT)
                .max(1);
            ("200 OK", "application/json", crate::heat_json(limit))
        }
        "/alerts" => ("200 OK", "application/json", crate::alerts_json()),
        "/traces" => (
            "200 OK",
            "application/json",
            crate::trace_store().render_summaries_json(),
        ),
        "/debug/profile" => {
            let seconds = query_param(query, "seconds")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(5)
                .clamp(1, MAX_PROFILE_SECONDS);
            let profile =
                crate::collect_profile(Duration::from_secs(seconds), crate::DEFAULT_SAMPLE_HZ);
            ("200 OK", "text/plain", profile)
        }
        _ => {
            if let Some(raw_id) = path.strip_prefix("/traces/") {
                return match crate::parse_trace_id(raw_id) {
                    Some(id) => match crate::trace_store().render_trace_json(id) {
                        Some(json) => ("200 OK", "application/json", json),
                        None => (
                            "404 Not Found",
                            "text/plain",
                            "trace not found (dropped by the sampler or evicted)\n".to_string(),
                        ),
                    },
                    None => (
                        "400 Bad Request",
                        "text/plain",
                        "trace id must be hex (as printed) or decimal\n".to_string(),
                    ),
                };
            }
            ("404 Not Found", "text/plain", "not found\n".to_string())
        }
    }
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_events_and_healthz() {
        crate::global().counter("mmdb_server_test_total").add(7);
        crate::recorder().record(crate::EventKind::LintRun, "server-test", &[]);
        let server = serve("127.0.0.1:0", None).unwrap();
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"));

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("mmdb_server_test_total 7"));
        assert!(metrics.contains("mmdb_uptime_seconds"));

        let metrics_json = get(addr, "/metrics?format=json");
        assert!(metrics_json.contains("application/json"));
        assert!(metrics_json.contains("\"mmdb_server_test_total\": 7"));

        let events = get(addr, "/events");
        assert!(events.contains("\"events\""));
        assert!(events.contains("server-test"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn events_since_cursor_over_http() {
        crate::recorder().record(crate::EventKind::LintRun, "cursor-a", &[]);
        crate::recorder().record(crate::EventKind::LintRun, "cursor-b", &[]);
        let events = crate::recorder().events();
        let seq_b = events.iter().find(|e| e.detail == "cursor-b").unwrap().seq;
        let server = serve("127.0.0.1:0", None).unwrap();
        let addr = server.local_addr();

        // A cursor at cursor-b excludes it (and everything older).
        let empty = get(addr, &format!("/events?since={seq_b}"));
        assert!(empty.starts_with("HTTP/1.1 200"), "{empty}");
        assert!(!empty.contains("cursor-b"));

        // One event behind returns cursor-b but never the older cursor-a.
        let tail = get(addr, &format!("/events?since={}", seq_b - 1));
        assert!(tail.contains("cursor-b"));
        assert!(!tail.contains("cursor-a"));

        let bad = get(addr, "/events?since=banana");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        server.shutdown();
    }

    #[test]
    fn readyz_follows_probe_and_defaults_ready() {
        // No probe: liveness and readiness coincide.
        let plain = serve("127.0.0.1:0", None).unwrap();
        let ready = get(plain.local_addr(), "/readyz");
        assert!(ready.starts_with("HTTP/1.1 200"), "{ready}");
        plain.shutdown();

        // With a probe: 503 until it flips.
        let ready_flag = Arc::new(AtomicBool::new(false));
        let probe_flag = Arc::clone(&ready_flag);
        let server = serve_with(
            "127.0.0.1:0",
            ServeOptions {
                prerender: None,
                readiness: Some(Arc::new(move || {
                    if probe_flag.load(Ordering::SeqCst) {
                        Ok("index warm".to_string())
                    } else {
                        Err("index cold".to_string())
                    }
                })),
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let unready = get(addr, "/readyz");
        assert!(unready.starts_with("HTTP/1.1 503"), "{unready}");
        assert!(unready.contains("unready: index cold"));
        ready_flag.store(true, Ordering::SeqCst);
        let ready = get(addr, "/readyz");
        assert!(ready.starts_with("HTTP/1.1 200"), "{ready}");
        assert!(ready.contains("ready: index warm"));
        server.shutdown();
    }

    #[test]
    fn traces_routes_serve_store_contents() {
        use std::time::Duration as D;
        let mut trace = crate::QueryTrace::new("request");
        trace.stage("queue_wait", D::from_micros(7));
        trace.finish(D::from_millis(1));
        crate::trace_store().offer(
            crate::StoredTrace {
                trace_id: 0xABCD,
                unix_micros: 1,
                opcode: "range".into(),
                status: "OK".into(),
                total: D::from_millis(1),
                queue_wait: D::from_micros(7),
                keep_reason: crate::KeepReason::Slow,
                trace,
            },
            true,
        );
        let server = serve("127.0.0.1:0", None).unwrap();
        let addr = server.local_addr();

        let list = get(addr, "/traces");
        assert!(list.starts_with("HTTP/1.1 200"), "{list}");
        assert!(list.contains("000000000000abcd"), "{list}");

        let one = get(addr, "/traces/000000000000abcd");
        assert!(one.starts_with("HTTP/1.1 200"), "{one}");
        assert!(one.contains("queue_wait"), "{one}");

        let missing = get(addr, "/traces/00000000deadbeef");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let bad = get(addr, "/traces/not-an-id");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        server.shutdown();
    }

    #[test]
    fn debug_profile_returns_collapsed_stacks() {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let _reg = crate::register_profiler_thread("http-prof-worker");
            let _f = crate::profile_frame("serving");
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let server = serve("127.0.0.1:0", None).unwrap();
        let profile = get(server.local_addr(), "/debug/profile?seconds=1");
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        assert!(profile.starts_with("HTTP/1.1 200"), "{profile}");
        assert!(
            profile.contains("http-prof-worker;serving"),
            "missing stack: {profile}"
        );
        server.shutdown();
    }

    #[test]
    fn prerender_hook_runs_before_scrape() {
        let hook_ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&hook_ran);
        let server = serve(
            "127.0.0.1:0",
            Some(Arc::new(move || flag.store(true, Ordering::SeqCst))),
        )
        .unwrap();
        let _ = get(server.local_addr(), "/metrics");
        assert!(hook_ran.load(Ordering::SeqCst));
        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let server = serve("127.0.0.1:0", None).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }
}

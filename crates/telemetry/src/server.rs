//! A dependency-free metrics exposition server over `std::net`.
//!
//! Serves three GET routes on a background accept thread:
//!
//! * `/metrics` — the global registry in Prometheus text format
//!   (`?format=json` switches to the JSON exposition),
//! * `/events`  — the flight recorder's retained events as JSON,
//! * `/healthz` — liveness probe (`ok`).
//!
//! The server is deliberately minimal HTTP/1.1: it parses the request line,
//! drains headers, answers with `Connection: close`, and handles one request
//! per connection — exactly what a Prometheus scraper or `curl` needs, with
//! zero dependencies beyond `std::net::TcpListener`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Callback run before each `/metrics` render, letting the embedder flush
/// thread-local staging (e.g. `mmdb_rules::flush_metrics`) so scrapes see
/// exact totals.
pub type PrerenderHook = Arc<dyn Fn() + Send + Sync>;

/// A running exposition server; dropping it shuts the accept loop down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a self-connection wakes it so
        // it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, or `:0` for an ephemeral port) and
/// serves `/metrics`, `/events`, and `/healthz` from a background thread.
pub fn serve(addr: &str, prerender: Option<PrerenderHook>) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("mmdb-metrics-server".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = handle_connection(stream, prerender.as_ref());
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn handle_connection(stream: TcpStream, prerender: Option<&PrerenderHook>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; the bodyless GETs we serve need
    // nothing from them.
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let (status, content_type, body) = route(method, path, query, prerender);
    respond(stream, status, content_type, &body)
}

fn route(
    method: &str,
    path: &str,
    query: &str,
    prerender: Option<&PrerenderHook>,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        );
    }
    match path {
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/metrics" => {
            if let Some(hook) = prerender {
                hook();
            }
            if query.split('&').any(|kv| kv == "format=json") {
                ("200 OK", "application/json", crate::global().render_json())
            } else {
                (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    crate::global().render_prometheus(),
                )
            }
        }
        "/events" => (
            "200 OK",
            "application/json",
            crate::recorder().render_json(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    }
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_events_and_healthz() {
        crate::global().counter("mmdb_server_test_total").add(7);
        crate::recorder().record(crate::EventKind::LintRun, "server-test", &[]);
        let server = serve("127.0.0.1:0", None).unwrap();
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"));

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("mmdb_server_test_total 7"));

        let metrics_json = get(addr, "/metrics?format=json");
        assert!(metrics_json.contains("application/json"));
        assert!(metrics_json.contains("\"mmdb_server_test_total\": 7"));

        let events = get(addr, "/events");
        assert!(events.contains("\"events\""));
        assert!(events.contains("server-test"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn prerender_hook_runs_before_scrape() {
        let hook_ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&hook_ran);
        let server = serve(
            "127.0.0.1:0",
            Some(Arc::new(move || flag.store(true, Ordering::SeqCst))),
        )
        .unwrap();
        let _ = get(server.local_addr(), "/metrics");
        assert!(hook_ran.load(Ordering::SeqCst));
        server.shutdown();
    }

    #[test]
    fn rejects_non_get() {
        let server = serve("127.0.0.1:0", None).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }
}

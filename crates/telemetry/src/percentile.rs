//! Mergeable histogram snapshots and quantile estimation.
//!
//! A [`HistogramSnapshot`] is a plain-value copy of a [`Histogram`]'s bucket
//! counts. Snapshots from different histograms (or different processes, once
//! deserialized) can be [`merge`](HistogramSnapshot::merge)d, and two
//! snapshots of the *same* histogram can be
//! [`diff`](HistogramSnapshot::diff)ed to isolate the observations of one
//! workload window. Quantiles are estimated Prometheus-style: linear
//! interpolation inside the bucket that crosses the target rank, clamped to
//! the tracked maximum so a single observation reports itself exactly.

use crate::registry::Histogram;
use std::time::Duration;

/// A point-in-time, mergeable copy of one histogram's distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-cumulative per-bucket counts; one slot per shared bound plus the
    /// trailing `+Inf` bucket (see [`Histogram::bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Sum of all observations, in nanoseconds.
    pub sum_nanos: u64,
    /// Total number of observations.
    pub count: u64,
    /// Largest single observation, in nanoseconds. For a
    /// [`diff`](Self::diff) this is the *lifetime* maximum of the later
    /// snapshot — an upper bound on the window's maximum, not necessarily an
    /// observation inside the window.
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// A zero-valued snapshot with the standard bucket layout.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; Histogram::bucket_bounds().len() + 1],
            ..HistogramSnapshot::default()
        }
    }

    /// Combines two snapshots (e.g. the RBM and BWM series, or per-shard
    /// histograms) into one distribution.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let bucket = |s: &HistogramSnapshot, i: usize| s.buckets.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..len)
                .map(|i| bucket(self, i).saturating_add(bucket(other, i)))
                .collect(),
            sum_nanos: self.sum_nanos.saturating_add(other.sum_nanos),
            count: self.count.saturating_add(other.count),
            max_nanos: self.max_nanos.max(other.max_nanos),
        }
    }

    /// The observations recorded between `earlier` and `self` (both taken
    /// from the same histogram). Per-bucket subtraction saturates at zero;
    /// `max_nanos` keeps the later snapshot's lifetime maximum.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let bucket = |s: &HistogramSnapshot, i: usize| s.buckets.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..self.buckets.len())
                .map(|i| bucket(self, i).saturating_sub(bucket(earlier, i)))
                .collect(),
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            count: self.count.saturating_sub(earlier.count),
            max_nanos: self.max_nanos,
        }
    }

    /// Mean observation, or `None` when the snapshot is empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        Some(Duration::from_nanos(self.sum_nanos / self.count))
    }

    /// Largest observation (see [`max_nanos`](Self::max_nanos) for the diff
    /// caveat).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket containing the target rank, clamped to the tracked
    /// maximum. Returns `None` when the snapshot holds no observations.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let bounds = Histogram::bucket_bounds();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let below = cumulative;
            cumulative = cumulative.saturating_add(n);
            if n == 0 || cumulative < target {
                continue;
            }
            let upper = bounds.get(i).copied().unwrap_or(f64::INFINITY);
            let est_secs = if upper.is_finite() {
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let frac = (target - below) as f64 / n as f64;
                lower + (upper - lower) * frac
            } else {
                // +Inf bucket: the tracked maximum is the best estimate.
                self.max_nanos as f64 / 1e9
            };
            let mut est_nanos = (est_secs * 1e9).round() as u64;
            if self.max_nanos > 0 {
                est_nanos = est_nanos.min(self.max_nanos);
            }
            return Some(Duration::from_nanos(est_nanos));
        }
        // count > 0 guarantees some bucket crosses the target rank.
        None
    }

    /// Fraction of observations strictly above `threshold`, estimated from
    /// the bucket layout. Observations are counted as "over" when their
    /// whole bucket lies above the threshold; the bucket *containing* the
    /// threshold is apportioned linearly, matching the interpolation
    /// [`quantile`](Self::quantile) uses in the other direction. Returns
    /// 0.0 for an empty snapshot. This is the "bad event" estimator the
    /// SLO burn-rate windows are built on.
    pub fn fraction_over(&self, threshold: Duration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let t = threshold.as_secs_f64();
        let bounds = Histogram::bucket_bounds();
        let mut over = 0.0f64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let upper = bounds.get(i).copied().unwrap_or(f64::INFINITY);
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            if t < lower {
                over += n as f64;
            } else if t < upper {
                let width = if upper.is_finite() {
                    upper - lower
                } else {
                    // +Inf bucket: anchor on the tracked maximum.
                    (self.max_nanos as f64 / 1e9 - lower).max(f64::MIN_POSITIVE)
                };
                over += n as f64 * (1.0 - ((t - lower) / width).clamp(0.0, 1.0));
            }
        }
        (over / self.count as f64).clamp(0.0, 1.0)
    }

    /// Median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<Duration> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_all(h: &Histogram, durations: &[Duration]) -> HistogramSnapshot {
        for &d in durations {
            h.observe(d);
        }
        h.snapshot()
    }

    #[test]
    fn zero_samples_has_no_quantiles() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap.max(), Duration::ZERO);
        let empty = HistogramSnapshot::empty();
        assert_eq!(empty.quantile(0.99), None);
    }

    #[test]
    fn single_sample_reports_itself_exactly() {
        let h = Histogram::default();
        let snap = observe_all(&h, &[Duration::from_micros(30)]);
        // Interpolation lands on the bucket's upper bound (50µs) but the
        // max clamp pulls every quantile back to the one real observation.
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), Some(Duration::from_micros(30)), "q={q}");
        }
        assert_eq!(snap.mean(), Some(Duration::from_micros(30)));
    }

    #[test]
    fn bucket_boundary_values_stay_in_their_bucket() {
        let h = Histogram::default();
        // 1µs is exactly the first bound: `secs <= bound` keeps it in
        // bucket 0, so the p50 interpolates within (0, 1µs] and clamps to
        // the 1µs max.
        let snap = observe_all(&h, &[Duration::from_micros(1)]);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.p50(), Some(Duration::from_micros(1)));
        // 1ms is a mid-array bound (index 9); confirm no spill into the
        // next bucket.
        let h2 = Histogram::default();
        let snap2 = observe_all(&h2, &[Duration::from_millis(1)]);
        let bound_idx = Histogram::bucket_bounds()
            .iter()
            .position(|&b| (b - 1e-3).abs() < f64::EPSILON)
            .unwrap();
        assert_eq!(snap2.buckets[bound_idx], 1);
        assert_eq!(snap2.p99(), Some(Duration::from_millis(1)));
    }

    #[test]
    fn merge_of_disjoint_snapshots() {
        let fast = Histogram::default();
        let fast_snap = observe_all(
            &fast,
            &[
                Duration::from_micros(1),
                Duration::from_micros(1),
                Duration::from_micros(1),
            ],
        );
        let slow = Histogram::default();
        let slow_snap = observe_all(&slow, &[Duration::from_secs(1)]);
        let merged = fast_snap.merge(&slow_snap);
        assert_eq!(merged.count, 4);
        assert_eq!(merged.max(), Duration::from_secs(1));
        // Median interpolates within the fast mode's bucket (0, 1µs]; the
        // tail sees the slow outlier.
        let p50 = merged.p50().unwrap();
        assert!(
            p50 > Duration::ZERO && p50 <= Duration::from_micros(1),
            "p50 was {p50:?}"
        );
        let p99 = merged.p99().unwrap();
        assert!(p99 >= Duration::from_millis(100), "p99 was {p99:?}");
        assert!(p99 <= Duration::from_secs(1));
        // Merge is commutative.
        assert_eq!(merged, slow_snap.merge(&fast_snap));
    }

    #[test]
    fn diff_isolates_a_window() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(3));
        let before = h.snapshot();
        h.observe(Duration::from_micros(40));
        h.observe(Duration::from_micros(45));
        let window = h.snapshot().diff(&before);
        assert_eq!(window.count, 2);
        assert_eq!(
            window.mean(),
            Some(Duration::from_nanos((40_000 + 45_000) / 2))
        );
        let p50 = window.p50().unwrap();
        assert!(p50 > Duration::from_micros(20), "p50 was {p50:?}");
        assert!(p50 <= Duration::from_micros(50));
    }

    #[test]
    fn plus_inf_bucket_uses_tracked_max() {
        let h = Histogram::default();
        let snap = observe_all(&h, &[Duration::from_secs(30)]);
        assert_eq!(*snap.buckets.last().unwrap(), 1);
        assert_eq!(snap.p99(), Some(Duration::from_secs(30)));
    }

    #[test]
    fn fraction_over_tracks_the_tail() {
        let h = Histogram::default();
        // 90 fast (≤1µs bucket) + 10 slow (≤100ms bucket) observations.
        let mut durations = vec![Duration::from_nanos(500); 90];
        durations.extend(vec![Duration::from_millis(50); 10]);
        let snap = observe_all(&h, &durations);
        assert_eq!(snap.fraction_over(Duration::ZERO), 1.0);
        // A 1ms threshold sits between the modes: exactly the slow 10%.
        let f = snap.fraction_over(Duration::from_millis(1));
        assert!((f - 0.10).abs() < 1e-9, "fraction was {f}");
        // Above the tracked max nothing qualifies.
        assert_eq!(snap.fraction_over(Duration::from_secs(100)), 0.0);
        assert_eq!(
            HistogramSnapshot::empty().fraction_over(Duration::from_millis(1)),
            0.0
        );
        // Monotone non-increasing in the threshold.
        let mut last = 1.0f64;
        for ms in [0u64, 1, 5, 20, 60, 1000] {
            let f = snap.fraction_over(Duration::from_millis(ms));
            assert!(f <= last + 1e-12, "fraction_over not monotone at {ms}ms");
            last = f;
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::default();
        let durations: Vec<Duration> = (1..=200).map(Duration::from_micros).collect();
        let snap = observe_all(&h, &durations);
        let mut last = Duration::ZERO;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = snap.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v:?} < {last:?}");
            last = v;
        }
        assert!(last <= Duration::from_micros(200));
    }
}

//! Human-readable duration formatting shared by `mmdbctl explain`,
//! `mmdbctl top`, and the slow-query log.

use std::time::Duration;

/// Formats `d` with a stable unit ladder (µs below 1 ms, ms below 1 s,
/// seconds above) and two decimals: `0.50µs`, `17.25µs`, `123.46ms`,
/// `2.50s`. Unlike `Duration`'s `{:?}` this never emits nine-digit
/// fractions, so trace trees and dashboards stay scannable.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ladder() {
        assert_eq!(format_duration(Duration::ZERO), "0.00µs");
        assert_eq!(format_duration(Duration::from_nanos(500)), "0.50µs");
        assert_eq!(format_duration(Duration::from_micros(17)), "17.00µs");
        assert_eq!(format_duration(Duration::from_nanos(17_250)), "17.25µs");
        assert_eq!(format_duration(Duration::from_micros(999)), "999.00µs");
        assert_eq!(format_duration(Duration::from_micros(1000)), "1.00ms");
        assert_eq!(
            format_duration(Duration::from_nanos(123_456_789)),
            "123.46ms"
        );
        assert_eq!(format_duration(Duration::from_millis(999)), "999.00ms");
        assert_eq!(format_duration(Duration::from_millis(2500)), "2.50s");
        assert_eq!(format_duration(Duration::from_secs(90)), "90.00s");
    }
}

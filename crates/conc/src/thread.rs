//! Thread facade: `spawn`/`JoinHandle`/`yield_now` that route through the
//! model scheduler inside a model run and fall back to `std::thread`
//! otherwise.

/// A handle to a spawned thread; joining returns the closure's value (or
/// the panic payload, as with [`std::thread::JoinHandle`]).
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    #[cfg(feature = "model")]
    model_tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside a
    /// model run, the join is a scheduling point that only becomes enabled
    /// once the target thread's model state is finished.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "model")]
        if let Some(tid) = self.model_tid {
            if let Some(ctx) = crate::model::current_ctx() {
                ctx.exp
                    .schedule_point(ctx.tid, crate::model::exec::Op::Join { tid });
            }
        }
        self.inner.join()
    }
}

/// Spawns a thread. Inside a model run the thread becomes a controlled
/// model thread: it parks immediately and only executes when the scheduler
/// hands it the token, one facade operation at a time.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(feature = "model")]
    if let Some(ctx) = crate::model::current_ctx() {
        let tid = ctx
            .exp
            .register_thread(ctx.tid, format!("spawned-by-t{}", ctx.tid));
        let exp = std::sync::Arc::clone(&ctx.exp);
        let inner = std::thread::spawn(move || {
            crate::model::set_ctx(Some(crate::model::Ctx {
                exp: std::sync::Arc::clone(&exp),
                tid,
            }));
            exp.initial_wait(tid);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match result {
                Ok(v) => {
                    exp.thread_finished(tid, None);
                    crate::model::set_ctx(None);
                    v
                }
                Err(payload) => {
                    let msg = if payload
                        .downcast_ref::<crate::model::exec::ModelAbort>()
                        .is_some()
                    {
                        None
                    } else {
                        Some(crate::model::panic_message(payload.as_ref()))
                    };
                    exp.thread_finished(tid, msg);
                    crate::model::set_ctx(None);
                    std::panic::resume_unwind(payload)
                }
            }
        });
        return JoinHandle {
            inner,
            model_tid: Some(tid),
        };
    }
    JoinHandle {
        inner: std::thread::spawn(f),
        #[cfg(feature = "model")]
        model_tid: None,
    }
}

/// Yields. Inside a model run this is a pure scheduling point (gives the
/// scheduler a chance to preempt); otherwise [`std::thread::yield_now`].
pub fn yield_now() {
    #[cfg(feature = "model")]
    if let Some(ctx) = crate::model::current_ctx() {
        ctx.exp
            .schedule_point(ctx.tid, crate::model::exec::Op::Yield);
        return;
    }
    std::thread::yield_now();
}

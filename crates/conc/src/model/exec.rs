//! One model execution: the serialized-thread scheduler, the weak-memory
//! atomic model, and the vector-clock race detector.
//!
//! Execution model (CHESS-style replay exploration): every facade operation
//! is a *scheduling point*. The thread about to perform one parks, a
//! successor is chosen (replaying a recorded prefix, extending it
//! depth-first, or sampling randomly), and exactly one thread runs at a
//! time — so each execution is a total interleaving of facade operations,
//! recorded as a decision sequence that can be replayed verbatim.
//!
//! Atomics are *not* modeled sequentially consistent: each location keeps a
//! history of stores, and a `Relaxed`/`Acquire` load may read any store the
//! coherence and happens-before rules still permit. Which store it reads is
//! itself a recorded decision, so downgrading an `Acquire` to `Relaxed`
//! opens real failing executions the DFS will find.

use super::rng::Rng;
use super::vclock::VClock;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to unwind controlled threads once the execution has
/// failed or finished exploring. Never reported as a user failure.
pub(crate) struct ModelAbort;

/// The memory-ordering subset the model distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Ord {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ord {
    pub(crate) fn from_std(o: Ordering) -> Ord {
        match o {
            Ordering::Relaxed => Ord::Relaxed,
            Ordering::Acquire => Ord::Acquire,
            Ordering::Release => Ord::Release,
            Ordering::AcqRel => Ord::AcqRel,
            Ordering::SeqCst => Ord::SeqCst,
            _ => Ord::SeqCst,
        }
    }

    fn acquires(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel | Ord::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel | Ord::SeqCst)
    }
}

/// Read-modify-write flavors the facade atomics need.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Rmw {
    Add(u64),
    Sub(u64),
    Max(u64),
    Or(u64),
    And(u64),
    Swap(u64),
    /// `compare_exchange(expect, new)`; stores only on match.
    Cas {
        expect: u64,
        new: u64,
    },
}

impl Rmw {
    /// `(new_value_to_store, performed_store)`.
    fn apply(self, old: u64) -> (u64, bool) {
        match self {
            Rmw::Add(n) => (old.wrapping_add(n), true),
            Rmw::Sub(n) => (old.wrapping_sub(n), true),
            Rmw::Max(n) => (old.max(n), true),
            Rmw::Or(n) => (old | n, true),
            Rmw::And(n) => (old & n, true),
            Rmw::Swap(n) => (n, true),
            Rmw::Cas { expect, new } => {
                if old == expect {
                    (new, true)
                } else {
                    (old, false)
                }
            }
        }
    }
}

/// The operation a thread is parked on, pending scheduling.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// Thread creation: runs once before the spawned closure body.
    Start,
    Load {
        loc: usize,
        ord: Ord,
        init: u64,
    },
    Store {
        loc: usize,
        ord: Ord,
        val: u64,
        init: u64,
    },
    Rmw {
        loc: usize,
        ord: Ord,
        rmw: Rmw,
        init: u64,
    },
    MutexLock {
        loc: usize,
    },
    MutexTryLock {
        loc: usize,
    },
    RwRead {
        loc: usize,
    },
    RwWrite {
        loc: usize,
    },
    /// Re-acquisition half of a condvar wait (enabled once notified and the
    /// mutex is free).
    CvReacquire {
        mutex: usize,
    },
    Join {
        tid: usize,
    },
    Yield,
    CellRead {
        loc: usize,
        what: &'static str,
    },
    CellWrite {
        loc: usize,
        what: &'static str,
    },
}

impl Op {
    fn describe(&self) -> String {
        match self {
            Op::Start => "start".to_string(),
            Op::Load { ord, .. } => format!("load({ord:?})"),
            Op::Store { ord, val, .. } => format!("store({ord:?}, {val})"),
            Op::Rmw { ord, rmw, .. } => format!("rmw({ord:?}, {rmw:?})"),
            Op::MutexLock { .. } => "mutex.lock".to_string(),
            Op::MutexTryLock { .. } => "mutex.try_lock".to_string(),
            Op::RwRead { .. } => "rwlock.read".to_string(),
            Op::RwWrite { .. } => "rwlock.write".to_string(),
            Op::CvReacquire { .. } => "condvar.reacquire".to_string(),
            Op::Join { tid } => format!("join(t{tid})"),
            Op::Yield => "yield".to_string(),
            Op::CellRead { what, .. } => format!("cell.read({what})"),
            Op::CellWrite { what, .. } => format!("cell.write({what})"),
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Executing user code between scheduling points (at most one thread).
    Running,
    /// Parked at a scheduling point with `pending` set.
    Ready,
    /// Parked in a condvar wait; schedulable once `notified`.
    Waiting {
        notified: bool,
    },
    Finished,
}

struct ThreadSt {
    status: Status,
    pending: Option<Op>,
    clock: VClock,
    name: String,
}

#[derive(Default)]
struct MutexSt {
    owner: Option<usize>,
    /// Release clock of the last unlock.
    clock: VClock,
}

#[derive(Default)]
struct RwSt {
    writer: Option<usize>,
    readers: Vec<usize>,
    /// Release clock of the last write unlock.
    write_clock: VClock,
    /// Join of release clocks of all read unlocks since the last write.
    reader_clock: VClock,
}

#[derive(Default)]
struct CvSt {
    /// Waiting tids in arrival order (notify_one wakes the oldest).
    waiters: Vec<usize>,
}

struct StoreEv {
    seq: u64,
    val: u64,
    writer: usize,
    /// The writer's own clock component at the store (hb test: the store
    /// happens-before thread T iff `T.clock[writer] >= stamp`).
    stamp: u32,
    /// Release clock carried to acquire loads; `None` for relaxed stores
    /// that head no release sequence.
    release: Option<VClock>,
}

struct Location {
    stores: Vec<StoreEv>,
    next_seq: u64,
    /// Per-thread coherence floor: a thread never reads a store older than
    /// one it already read or wrote.
    read_floor: HashMap<usize, u64>,
}

/// Retained store-history depth per atomic location. Older stores are
/// almost always happens-before-superseded anyway; capping keeps long
/// counter loops linear. (Documented approximation: behaviors reading
/// ≥16-generation-stale values are not explored.)
const STORE_HISTORY: usize = 16;

struct CellSt {
    last_write: Option<(usize, VClock)>,
    reads: HashMap<usize, VClock>,
}

/// Why an execution failed, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description (panic message, deadlock, race, …).
    pub message: String,
    /// The decision sequence; feed to [`crate::model::Model::replay`].
    pub schedule: Vec<usize>,
    /// One line per executed operation, in order.
    pub trace: Vec<String>,
}

impl Failure {
    /// Renders the failure with its full schedule trace.
    pub fn render(&self) -> String {
        let mut out = format!(
            "model failure: {}\nschedule: {:?}\n",
            self.message, self.schedule
        );
        out.push_str("trace:\n");
        for (i, line) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {i:4}  {line}\n"));
        }
        out
    }
}

/// Scheduling strategy for choice points beyond the replay prefix.
pub(crate) enum Mode {
    /// First-alternative default; exploration backtracks over the recorded
    /// decisions.
    Dfs,
    /// Seeded-random sampling.
    Random(Rng),
}

pub(crate) struct ExecState {
    threads: Vec<ThreadSt>,
    running: Option<usize>,
    last_running: Option<usize>,
    /// Decisions replayed verbatim before new choices are made.
    prefix: Vec<usize>,
    /// `(n_alternatives, chosen)` per decision point, in order.
    pub(crate) decisions: Vec<(usize, usize)>,
    mode: Mode,
    preemption_bound: Option<usize>,
    preemptions: usize,
    locations: HashMap<usize, Location>,
    mutexes: HashMap<usize, MutexSt>,
    rwlocks: HashMap<usize, RwSt>,
    condvars: HashMap<usize, CvSt>,
    cells: HashMap<usize, CellSt>,
    trace: Vec<String>,
    pub(crate) failure: Option<Failure>,
    aborting: bool,
    ops_executed: usize,
    op_budget: usize,
}

impl ExecState {
    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                message,
                schedule: self.decisions.iter().map(|&(_, c)| c).collect(),
                trace: self.trace.clone(),
            });
        }
        self.aborting = true;
    }

    /// One nondeterministic choice among `n` alternatives.
    fn choose(&mut self, n: usize) -> usize {
        let idx = self.decisions.len();
        let chosen = if idx < self.prefix.len() {
            let c = self.prefix[idx];
            if c >= n {
                // Replay divergence: the program under test is not a pure
                // function of the schedule (e.g. it consulted wall-clock
                // time to branch). Surface it instead of exploring garbage.
                self.fail(format!(
                    "replay divergence at decision {idx}: prefix chose {c} of {n} alternatives"
                ));
                0
            } else {
                c
            }
        } else {
            match &mut self.mode {
                Mode::Dfs => 0,
                Mode::Random(rng) => rng.below(n),
            }
        };
        self.decisions.push((n, chosen));
        chosen
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn op_enabled(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        match t.status {
            Status::Waiting { notified } => {
                if !notified {
                    return false;
                }
                match t.pending {
                    Some(Op::CvReacquire { mutex }) => {
                        self.mutexes.get(&mutex).map_or(true, |m| m.owner.is_none())
                    }
                    _ => false,
                }
            }
            Status::Ready => match t.pending {
                Some(Op::MutexLock { loc }) => {
                    self.mutexes.get(&loc).map_or(true, |m| m.owner.is_none())
                }
                Some(Op::RwRead { loc }) => self
                    .rwlocks
                    .get(&loc)
                    .map_or(true, |rw| rw.writer.is_none()),
                Some(Op::RwWrite { loc }) => self
                    .rwlocks
                    .get(&loc)
                    .map_or(true, |rw| rw.writer.is_none() && rw.readers.is_empty()),
                Some(Op::Join { tid: target }) => self.threads[target].status == Status::Finished,
                Some(_) => true,
                None => false,
            },
            _ => false,
        }
    }

    /// Picks the next thread to run. Called with no thread running and
    /// every live thread parked.
    fn schedule_next(&mut self) {
        if self.aborting {
            return;
        }
        let enabled: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.op_enabled(t))
            .collect();
        if enabled.is_empty() {
            if !self.all_finished() {
                let stuck: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| {
                        format!(
                            "t{i} ({}) {:?} at {}",
                            t.name,
                            t.status,
                            t.pending.as_ref().map_or("-".to_string(), Op::describe)
                        )
                    })
                    .collect();
                self.fail(format!(
                    "deadlock: no enabled thread [{}]",
                    stuck.join("; ")
                ));
            }
            return;
        }
        // Alternatives ordered: keep running the previous thread first
        // (cheapest, no preemption), then ascending tid.
        let mut alts = Vec::with_capacity(enabled.len());
        if let Some(last) = self.last_running {
            if enabled.contains(&last) {
                alts.push(last);
            }
        }
        for &t in &enabled {
            if Some(t) != self.last_running {
                alts.push(t);
            }
        }
        // Preemption bound: once spent, a still-enabled previous thread
        // must keep running (CHESS-style context bounding).
        let bounded = match (self.preemption_bound, self.last_running) {
            (Some(bound), Some(last)) if self.preemptions >= bound && enabled.contains(&last) => {
                vec![last]
            }
            _ => alts,
        };
        let k = if bounded.len() == 1 {
            0
        } else {
            self.choose(bounded.len())
        };
        let chosen = bounded[k];
        if let Some(last) = self.last_running {
            if chosen != last && enabled.contains(&last) {
                self.preemptions += 1;
            }
        }
        self.running = Some(chosen);
        self.last_running = Some(chosen);
    }

    fn location(&mut self, loc: usize, init: u64) -> &mut Location {
        self.locations.entry(loc).or_insert_with(|| Location {
            stores: vec![StoreEv {
                seq: 0,
                val: init,
                writer: 0,
                stamp: 0, // hb-before every thread: clock[0] >= 0 always
                release: Some(VClock::new()),
            }],
            next_seq: 1,
            read_floor: HashMap::new(),
        })
    }

    /// Executes the pending op of `tid`. Returns the op's value result
    /// (load value, rmw old value, try_lock success as 0/1).
    fn execute(&mut self, tid: usize) -> u64 {
        self.ops_executed += 1;
        if self.ops_executed > self.op_budget {
            self.fail(format!(
                "op budget ({}) exceeded: livelock or unbounded loop under model",
                self.op_budget
            ));
            return 0;
        }
        let op = self.threads[tid]
            .pending
            .take()
            .expect("scheduled thread has a pending op");
        self.threads[tid].clock.tick(tid);
        let desc = op.describe();
        let mut outcome = String::new();
        let result: u64 = match op {
            Op::Start | Op::Yield => 0,
            Op::Load { loc, ord, init } => self.atomic_load(tid, loc, ord, init, &mut outcome),
            Op::Store {
                loc,
                ord,
                val,
                init,
            } => {
                self.atomic_store(tid, loc, ord, val, init);
                0
            }
            Op::Rmw {
                loc,
                ord,
                rmw,
                init,
            } => {
                let old = self.atomic_rmw(tid, loc, ord, rmw, init);
                outcome = format!(" -> old {old}");
                old
            }
            Op::MutexLock { loc } => {
                let clock = {
                    let m = self.mutexes.entry(loc).or_default();
                    debug_assert!(m.owner.is_none());
                    m.owner = Some(tid);
                    m.clock.clone()
                };
                self.threads[tid].clock.join(&clock);
                0
            }
            Op::MutexTryLock { loc } => {
                let m = self.mutexes.entry(loc).or_default();
                if m.owner.is_none() {
                    m.owner = Some(tid);
                    let clock = m.clock.clone();
                    self.threads[tid].clock.join(&clock);
                    outcome = " -> acquired".to_string();
                    1
                } else {
                    outcome = " -> busy".to_string();
                    0
                }
            }
            Op::RwRead { loc } => {
                let clock = {
                    let rw = self.rwlocks.entry(loc).or_default();
                    debug_assert!(rw.writer.is_none());
                    rw.readers.push(tid);
                    rw.write_clock.clone()
                };
                self.threads[tid].clock.join(&clock);
                0
            }
            Op::RwWrite { loc } => {
                let (wc, rc) = {
                    let rw = self.rwlocks.entry(loc).or_default();
                    debug_assert!(rw.writer.is_none() && rw.readers.is_empty());
                    rw.writer = Some(tid);
                    (rw.write_clock.clone(), rw.reader_clock.clone())
                };
                self.threads[tid].clock.join(&wc);
                self.threads[tid].clock.join(&rc);
                0
            }
            Op::CvReacquire { mutex } => {
                let clock = {
                    let m = self.mutexes.entry(mutex).or_default();
                    debug_assert!(m.owner.is_none());
                    m.owner = Some(tid);
                    m.clock.clone()
                };
                self.threads[tid].clock.join(&clock);
                self.threads[tid].status = Status::Running;
                0
            }
            Op::Join { tid: target } => {
                let clock = self.threads[target].clock.clone();
                self.threads[tid].clock.join(&clock);
                0
            }
            Op::CellRead { loc, what } => {
                self.cell_access(tid, loc, what, false);
                0
            }
            Op::CellWrite { loc, what } => {
                self.cell_access(tid, loc, what, true);
                0
            }
        };
        self.threads[tid].status = Status::Running;
        let name = self.threads[tid].name.clone();
        self.trace.push(format!("t{tid} ({name}): {desc}{outcome}"));
        result
    }

    fn atomic_load(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ord,
        init: u64,
        outcome: &mut String,
    ) -> u64 {
        let clock = self.threads[tid].clock.clone();
        let (candidates, floor) = {
            let l = self.location(loc, init);
            let hb_floor = l
                .stores
                .iter()
                .filter(|s| clock.get(s.writer) >= s.stamp)
                .map(|s| s.seq)
                .max()
                .unwrap_or(0);
            let floor = hb_floor.max(l.read_floor.get(&tid).copied().unwrap_or(0));
            let mut cands: Vec<u64> = l
                .stores
                .iter()
                .filter(|s| s.seq >= floor)
                .map(|s| s.seq)
                .collect();
            cands.sort_unstable_by(|a, b| b.cmp(a)); // newest first
            if ord == Ord::SeqCst {
                // Approximation: an SC load reads the newest store. This
                // under-explores some mixed-SC behaviors but never invents
                // impossible ones.
                cands.truncate(1);
            }
            (cands, floor)
        };
        let _ = floor;
        let pick = if candidates.len() > 1 {
            candidates[self.choose(candidates.len())]
        } else {
            candidates[0]
        };
        let (val, release) = {
            let l = self.location(loc, init);
            l.read_floor.insert(tid, pick);
            let s = l
                .stores
                .iter()
                .find(|s| s.seq == pick)
                .expect("picked store exists");
            (s.val, s.release.clone())
        };
        if ord.acquires() {
            if let Some(rel) = release {
                self.threads[tid].clock.join(&rel);
            }
        }
        *outcome = format!(" -> {val} (store #{pick})");
        val
    }

    fn atomic_store(&mut self, tid: usize, loc: usize, ord: Ord, val: u64, init: u64) {
        let clock = self.threads[tid].clock.clone();
        let stamp = clock.get(tid);
        let l = self.location(loc, init);
        let seq = l.next_seq;
        l.next_seq += 1;
        l.read_floor.insert(tid, seq);
        let release = if ord.releases() { Some(clock) } else { None };
        l.stores.push(StoreEv {
            seq,
            val,
            writer: tid,
            stamp,
            release,
        });
        if l.stores.len() > STORE_HISTORY {
            l.stores.remove(0);
        }
    }

    fn atomic_rmw(&mut self, tid: usize, loc: usize, ord: Ord, rmw: Rmw, init: u64) -> u64 {
        // An atomic RMW always reads the newest store in modification order.
        let (old, prev_release) = {
            let l = self.location(loc, init);
            let s = l.stores.last().expect("location has stores");
            (s.val, s.release.clone())
        };
        if ord.acquires() {
            if let Some(rel) = &prev_release {
                let rel = rel.clone();
                self.threads[tid].clock.join(&rel);
            }
        }
        let (new, stored) = rmw.apply(old);
        if stored {
            let clock = self.threads[tid].clock.clone();
            let stamp = clock.get(tid);
            // Release sequence: the RMW store carries the previous release
            // clock forward even when itself relaxed.
            let release = if ord.releases() {
                let mut c = clock;
                if let Some(prev) = &prev_release {
                    c.join(prev);
                }
                Some(c)
            } else {
                prev_release
            };
            let l = self.location(loc, init);
            let seq = l.next_seq;
            l.next_seq += 1;
            l.read_floor.insert(tid, seq);
            l.stores.push(StoreEv {
                seq,
                val: new,
                writer: tid,
                stamp,
                release,
            });
            if l.stores.len() > STORE_HISTORY {
                l.stores.remove(0);
            }
        }
        old
    }

    fn cell_access(&mut self, tid: usize, loc: usize, what: &'static str, write: bool) {
        let clock = self.threads[tid].clock.clone();
        let name = self.threads[tid].name.clone();
        let cell = self.cells.entry(loc).or_insert_with(|| CellSt {
            last_write: None,
            reads: HashMap::new(),
        });
        let mut race: Option<String> = None;
        if let Some((wt, wc)) = &cell.last_write {
            if *wt != tid && !wc.le(&clock) {
                race = Some(format!(
                    "data race on {what}: {}-access by t{tid} ({name}) is concurrent with write by t{wt}",
                    if write { "write" } else { "read" }
                ));
            }
        }
        if write && race.is_none() {
            for (rt, rc) in &cell.reads {
                if *rt != tid && !rc.le(&clock) {
                    race = Some(format!(
                        "data race on {what}: write by t{tid} ({name}) is concurrent with read by t{rt}"
                    ));
                    break;
                }
            }
        }
        if write {
            cell.last_write = Some((tid, clock));
            cell.reads.clear();
        } else {
            cell.reads.insert(tid, clock);
        }
        if let Some(msg) = race {
            self.fail(msg);
        }
    }
}

/// One execution's shared coordination block: controlled threads park on
/// `cv` until the scheduler hands them the token.
pub(crate) struct Exploration {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

impl Exploration {
    pub(crate) fn new(
        prefix: Vec<usize>,
        mode: Mode,
        preemption_bound: Option<usize>,
        op_budget: usize,
    ) -> Arc<Exploration> {
        let threads = vec![ThreadSt {
            status: Status::Running,
            pending: None,
            clock: VClock::new(),
            name: "main".to_string(),
        }];
        Arc::new(Exploration {
            state: StdMutex::new(ExecState {
                threads,
                running: Some(0),
                last_running: Some(0),
                prefix,
                decisions: Vec::new(),
                mode,
                preemption_bound,
                preemptions: 0,
                locations: HashMap::new(),
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                condvars: HashMap::new(),
                cells: HashMap::new(),
                trace: Vec::new(),
                failure: None,
                aborting: false,
                ops_executed: 0,
                op_budget,
            }),
            cv: StdCondvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Parks at a scheduling point and executes `op` once scheduled.
    /// Panics with [`ModelAbort`] when the execution is being torn down.
    pub(crate) fn schedule_point(&self, tid: usize, op: Op) -> u64 {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st.threads[tid].pending = Some(op);
        st.threads[tid].status = Status::Ready;
        st.running = None;
        st.schedule_next();
        self.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == Some(tid) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let r = st.execute(tid);
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        r
    }

    /// A non-blocking state mutation executed by the running thread without
    /// giving up the token (unlocks, notifies — operations that only ever
    /// *enable* other threads; interleavings around them are equivalent to
    /// interleavings at the neighbouring scheduling points).
    fn direct<R>(&self, f: impl FnOnce(&mut ExecState) -> R) -> Option<R> {
        let mut st = self.lock();
        if st.aborting {
            return None;
        }
        Some(f(&mut st))
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, loc: usize) {
        self.direct(|st| {
            let clock = {
                st.threads[tid].clock.tick(tid);
                st.threads[tid].clock.clone()
            };
            let m = st.mutexes.entry(loc).or_default();
            debug_assert_eq!(m.owner, Some(tid));
            m.owner = None;
            m.clock = clock;
            st.trace.push(format!("t{tid}: mutex.unlock"));
        });
        self.cv.notify_all();
    }

    pub(crate) fn rw_read_unlock(&self, tid: usize, loc: usize) {
        self.direct(|st| {
            st.threads[tid].clock.tick(tid);
            let clock = st.threads[tid].clock.clone();
            let rw = st.rwlocks.entry(loc).or_default();
            rw.readers.retain(|&r| r != tid);
            rw.reader_clock.join(&clock);
            st.trace.push(format!("t{tid}: rwlock.read_unlock"));
        });
        self.cv.notify_all();
    }

    pub(crate) fn rw_write_unlock(&self, tid: usize, loc: usize) {
        self.direct(|st| {
            st.threads[tid].clock.tick(tid);
            let clock = st.threads[tid].clock.clone();
            let rw = st.rwlocks.entry(loc).or_default();
            debug_assert_eq!(rw.writer, Some(tid));
            rw.writer = None;
            rw.write_clock = clock.clone();
            rw.reader_clock = clock;
            st.trace.push(format!("t{tid}: rwlock.write_unlock"));
        });
        self.cv.notify_all();
    }

    pub(crate) fn cv_notify(&self, tid: usize, cv_loc: usize, all: bool) {
        self.direct(|st| {
            st.threads[tid].clock.tick(tid);
            let waiters = st.condvars.entry(cv_loc).or_default().waiters.clone();
            let mut woken = 0usize;
            for w in waiters {
                if let Status::Waiting { notified: false } = st.threads[w].status {
                    st.threads[w].status = Status::Waiting { notified: true };
                    woken += 1;
                    if !all {
                        break;
                    }
                }
            }
            st.trace.push(format!(
                "t{tid}: condvar.notify_{} (woke {woken})",
                if all { "all" } else { "one" }
            ));
        });
        self.cv.notify_all();
    }

    /// The full condvar wait cycle: atomically release the mutex and park;
    /// once notified and the mutex is free, re-acquire and return.
    pub(crate) fn cv_wait(&self, tid: usize, cv_loc: usize, mutex: usize) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        // Release the mutex (release clock as in mutex_unlock).
        st.threads[tid].clock.tick(tid);
        let clock = st.threads[tid].clock.clone();
        {
            let m = st.mutexes.entry(mutex).or_default();
            debug_assert_eq!(m.owner, Some(tid));
            m.owner = None;
            m.clock = clock;
        }
        st.condvars.entry(cv_loc).or_default().waiters.push(tid);
        st.threads[tid].status = Status::Waiting { notified: false };
        st.threads[tid].pending = Some(Op::CvReacquire { mutex });
        st.trace
            .push(format!("t{tid}: condvar.wait (released mutex)"));
        st.running = None;
        st.schedule_next();
        self.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == Some(tid) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.condvars
            .entry(cv_loc)
            .or_default()
            .waiters
            .retain(|&w| w != tid);
        let r = st.execute(tid); // CvReacquire
        let _ = r;
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Registers a child thread spawned by `parent`; returns its tid.
    pub(crate) fn register_thread(&self, parent: usize, name: String) -> usize {
        let mut st = self.lock();
        st.threads[parent].clock.tick(parent);
        let mut clock = st.threads[parent].clock.clone();
        let tid = st.threads.len();
        clock.tick(tid);
        st.threads.push(ThreadSt {
            status: Status::Ready,
            pending: Some(Op::Start),
            clock,
            name: name.clone(),
        });
        st.trace.push(format!("t{parent}: spawn t{tid} ({name})"));
        tid
    }

    /// First act of a controlled child thread: park until first scheduled.
    pub(crate) fn initial_wait(&self, tid: usize) {
        let mut st = self.lock();
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.running == Some(tid) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.execute(tid); // Op::Start
    }

    /// Marks `tid` finished (normally or by panic) and hands the token on.
    pub(crate) fn thread_finished(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        if let Some(msg) = panic_msg {
            let name = st.threads[tid].name.clone();
            st.fail(format!("thread t{tid} ({name}) panicked: {msg}"));
        }
        st.threads[tid].status = Status::Finished;
        st.threads[tid].pending = None;
        if st.running == Some(tid) {
            st.running = None;
            st.schedule_next();
        }
        self.cv.notify_all();
    }

    /// Blocks the caller (tid 0, already finished) until every controlled
    /// thread has finished, tearing stragglers down on failure.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.lock();
        loop {
            if st.all_finished() {
                return;
            }
            if st.aborting {
                // Wake parked threads so they can unwind with ModelAbort.
                self.cv.notify_all();
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Records a failure from outside an op (used by the main wrapper when
    /// the closure body panics).
    pub(crate) fn record_failure(&self, message: String) {
        let mut st = self.lock();
        st.fail(message);
        self.cv.notify_all();
    }

    pub(crate) fn take_outcome(&self) -> (Vec<(usize, usize)>, Option<Failure>, usize) {
        let mut st = self.lock();
        let decisions = std::mem::take(&mut st.decisions);
        let failure = st.failure.take();
        (decisions, failure, st.ops_executed)
    }
}

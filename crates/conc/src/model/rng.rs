//! A tiny deterministic PRNG (SplitMix64) for the seeded-random fallback
//! scheduler. Vendoring-free and stable across platforms so a seed printed
//! in a failure report reproduces the same schedule anywhere.

/// SplitMix64: passes practical statistical tests, two lines of state-free
/// arithmetic, and — crucially here — fully deterministic from its seed.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (n ≥ 1), lightly biased and perfectly fine for
    /// schedule sampling.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
    }
}

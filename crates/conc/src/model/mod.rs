//! The bounded model checker: runs a closure under every (bounded) thread
//! interleaving, with weak-memory atomics and a vector-clock race detector.
//!
//! ```
//! # #[cfg(feature = "model")] {
//! use mmdb_conc::model::Model;
//! use mmdb_conc::sync::atomic::{AtomicU64, Ordering};
//! use mmdb_conc::sync::Arc;
//! use mmdb_conc::thread;
//!
//! Model::new().check(|| {
//!     let x = Arc::new(AtomicU64::new(0));
//!     let x2 = Arc::clone(&x);
//!     let h = thread::spawn(move || x2.fetch_add(1, Ordering::AcqRel));
//!     x.fetch_add(1, Ordering::AcqRel);
//!     h.join().unwrap();
//!     assert_eq!(x.load(Ordering::Acquire), 2);
//! }).assert_ok();
//! # }
//! ```
//!
//! Exploration is depth-first over recorded decision sequences (which thread
//! runs at each scheduling point; which coherence-permitted store a relaxed
//! load observes), capped by [`Model::max_schedules`] and a CHESS-style
//! preemption bound. When DFS is truncated, a seeded-random fallback keeps
//! sampling fresh schedules. Failures carry the exact decision sequence;
//! [`Model::replay`] re-executes it deterministically.

pub(crate) mod exec;
pub(crate) mod rng;
pub(crate) mod vclock;

pub use exec::Failure;

use exec::{Exploration, Mode};
use rng::Rng;
use std::cell::RefCell;
use std::sync::Arc;

/// Thread-local handle tying an OS thread to its model identity.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exp: Arc<Exploration>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The model context of the current OS thread, if it is executing inside a
/// model run. The facade consults this on every operation.
pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Downcasts a panic payload to a displayable message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of a [`Model::check`] run.
#[derive(Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Total facade operations executed across all schedules.
    pub ops: usize,
    /// First failing execution, if any.
    pub failure: Option<Failure>,
    /// Whether the bounded DFS visited the *entire* bounded space (no
    /// schedule cap hit; random fallback not needed).
    pub exhausted: bool,
}

impl Report {
    /// Panics with the rendered schedule trace if any execution failed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("{}", f.render());
        }
    }

    /// Asserts that at least one execution failed (for testing the checker
    /// itself against seeded bugs) and returns the failure.
    pub fn expect_failure(&self) -> &Failure {
        self.failure
            .as_ref()
            .expect("model run found no failing execution, but one was expected")
    }
}

/// Configuration + driver for a model-checking run.
pub struct Model {
    preemption_bound: Option<usize>,
    max_schedules: usize,
    random_iters: usize,
    seed: u64,
    op_budget: usize,
}

impl Default for Model {
    fn default() -> Model {
        Model {
            preemption_bound: Some(3),
            max_schedules: 4_000,
            random_iters: 200,
            seed: 0x6d6d_6462, // "mmdb"
            op_budget: 20_000,
        }
    }
}

impl Model {
    /// A model with the default bounds (preemption bound 3, 4k DFS
    /// schedules, 200 random fallback schedules).
    pub fn new() -> Model {
        Model::default()
    }

    /// Caps the number of preemptive context switches per execution
    /// (CHESS-style context bounding). `None` removes the bound.
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Model {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of DFS schedules explored.
    pub fn max_schedules(mut self, n: usize) -> Model {
        self.max_schedules = n;
        self
    }

    /// Number of seeded-random schedules sampled when DFS is truncated by
    /// [`Model::max_schedules`].
    pub fn random_iters(mut self, n: usize) -> Model {
        self.random_iters = n;
        self
    }

    /// Seed for the random fallback scheduler.
    pub fn seed(mut self, seed: u64) -> Model {
        self.seed = seed;
        self
    }

    /// Caps facade operations per execution (guards against livelock under
    /// the model, e.g. an unbounded spin loop).
    pub fn op_budget(mut self, n: usize) -> Model {
        self.op_budget = n;
        self
    }

    /// Explores interleavings of `f` until the bounded space is exhausted,
    /// a schedule fails, or the schedule caps are reached.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_abort_hook();
        let f = Arc::new(f);
        let mut report = Report {
            schedules: 0,
            ops: 0,
            failure: None,
            exhausted: false,
        };
        // Phase 1: DFS over decision sequences.
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            if report.schedules >= self.max_schedules {
                break;
            }
            let (decisions, failure, ops) = self.run_once(&f, prefix.clone(), Mode::Dfs);
            report.schedules += 1;
            report.ops += ops;
            if let Some(fail) = failure {
                report.failure = Some(fail);
                return report;
            }
            match next_prefix(&decisions) {
                Some(next) => prefix = next,
                None => {
                    report.exhausted = true;
                    return report;
                }
            }
        }
        // Phase 2: seeded-random sampling beyond the DFS cap.
        for i in 0..self.random_iters {
            let mode = Mode::Random(Rng::new(self.seed.wrapping_add(i as u64)));
            let (_, failure, ops) = self.run_once(&f, Vec::new(), mode);
            report.schedules += 1;
            report.ops += ops;
            if let Some(fail) = failure {
                report.failure = Some(fail);
                return report;
            }
        }
        report
    }

    /// Re-executes `f` under exactly the recorded decision sequence of a
    /// prior failure. Returns the failure it reproduces, if any.
    pub fn replay<F>(&self, f: F, schedule: &[usize]) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_abort_hook();
        let f = Arc::new(f);
        let (_, failure, _) = self.run_once(&f, schedule.to_vec(), Mode::Dfs);
        failure
    }

    /// One complete execution of `f` under one schedule.
    fn run_once<F>(
        &self,
        f: &Arc<F>,
        prefix: Vec<usize>,
        mode: Mode,
    ) -> (Vec<(usize, usize)>, Option<Failure>, usize)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exp = Exploration::new(prefix, mode, self.preemption_bound, self.op_budget);
        set_ctx(Some(Ctx {
            exp: Arc::clone(&exp),
            tid: 0,
        }));
        let body = Arc::clone(f);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body()));
        if let Err(payload) = outcome {
            if payload.downcast_ref::<exec::ModelAbort>().is_none() {
                exp.record_failure(format!(
                    "main thread panicked: {}",
                    panic_message(payload.as_ref())
                ));
            }
        }
        exp.thread_finished(0, None);
        exp.wait_all_finished();
        set_ctx(None);
        exp.take_outcome()
    }
}

/// Tearing down a failed or finished execution unwinds parked threads with
/// a [`exec::ModelAbort`] panic; this hook keeps those expected unwinds out
/// of test output while forwarding every real panic to the previous hook.
fn install_abort_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<exec::ModelAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The next DFS decision prefix after a completed schedule: backtrack to the
/// deepest decision with an untried alternative, take the next one. `None`
/// when the bounded space is exhausted.
fn next_prefix(decisions: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let (n, chosen) = decisions[i];
        if chosen + 1 < n {
            let mut prefix: Vec<usize> = decisions[..i].iter().map(|&(_, c)| c).collect();
            prefix.push(chosen + 1);
            return Some(prefix);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prefix_backtracks_deepest_open_decision() {
        assert_eq!(next_prefix(&[]), None);
        assert_eq!(next_prefix(&[(1, 0), (1, 0)]), None);
        assert_eq!(next_prefix(&[(2, 0)]), Some(vec![1]));
        assert_eq!(next_prefix(&[(2, 1)]), None);
        assert_eq!(next_prefix(&[(3, 1), (2, 1), (1, 0)]), Some(vec![2]));
        assert_eq!(next_prefix(&[(2, 0), (3, 2), (2, 0)]), Some(vec![0, 2, 1]));
    }
}

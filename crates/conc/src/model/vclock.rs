//! Vector clocks: the happens-before backbone of the race detector and the
//! weak-memory atomic model.

use std::fmt;

/// A vector clock, one logical-time component per model thread. Component
/// `t` is the number of operations thread `t` had executed the last time it
/// was (transitively) synchronized-with.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> VClock {
        VClock(Vec::new())
    }

    /// Component `tid`, zero when never set.
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn grow(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    /// Advances this thread's own component by one and returns the new
    /// value — the timestamp of the operation being executed.
    pub fn tick(&mut self, tid: usize) -> u32 {
        self.grow(tid);
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` — i.e. the event stamped `self` happens-before (or equals)
    /// the point stamped `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &v)| v <= other.get(tid))
    }
}

impl fmt::Debug for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        assert!(!a.le(&b));
        b.join(&a);
        assert!(a.le(&b));
        b.tick(1);
        a.tick(0);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
    }
}

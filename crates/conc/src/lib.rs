//! Concurrency checking layer for the mmdbms workspace.
//!
//! The workspace's concurrent cores — the storage mutation epoch, the
//! epoch-guarded bound-index slots, the flight-recorder ring buffer, the
//! metrics registry, and the server submission queue — are small hand-rolled
//! protocols whose correctness used to be argued only in prose and exercised
//! only by racy stress tests. This crate makes those arguments checkable:
//!
//! * [`sync`] and [`thread`] are a **drop-in facade** over
//!   `std::sync::atomic`, `Mutex`/`RwLock`/`Condvar` (`parking_lot`-style
//!   non-poisoning guards) and `std::thread::spawn`. In normal builds they
//!   compile to thin zero-cost wrappers; with the `model` cargo feature
//!   every operation executed *inside a model run* is routed through an
//!   instrumented scheduler instead.
//! * [`model`] (feature `model`) is a **bounded model checker** in the
//!   spirit of loom/CHESS: it runs a closure many times, exploring thread
//!   interleavings by depth-first search with a preemption bound (plus a
//!   seeded-random fallback for larger state spaces). Atomics are modeled
//!   with per-location store histories so a `Relaxed` load may observe any
//!   coherence-permitted stale value — weakened orderings therefore produce
//!   real failing executions, not just lint noise. Per-thread vector clocks
//!   drive a happens-before race detector over [`cell::RaceCell`] data.
//!   Every failure carries a deterministic, replayable schedule trace.
//!
//! The four riskiest protocols in the workspace are written against this
//! facade and model-tested from `crates/conc/tests/` (see the repository's
//! DESIGN.md appendix for the happens-before arguments):
//!
//! 1. storage mutation-epoch capture (`mmdb_storage::MutationEpoch`),
//! 2. bound-index epoch-guarded serving (`mmdb_boundidx::EpochSlot`),
//! 3. the telemetry flight-recorder ring buffer and registry counters,
//! 4. the server submission queue close/drain handshake.

#![warn(missing_docs)]

pub mod cell;
#[cfg(feature = "model")]
pub mod model;
pub mod sync;
pub mod thread;

//! Drop-in synchronization facade.
//!
//! In normal builds every type here is a thin wrapper over the `std::sync`
//! primitive of the same name (with `parking_lot`-style non-poisoning
//! guards, matching the vendored `parking_lot` stub the workspace already
//! uses). With the `model` cargo feature, any operation executed *inside a
//! [`crate::model::Model::check`] run* becomes a scheduling point of the
//! model checker instead; outside a model run the facade still behaves
//! exactly like std, so production crates compiled with the feature keep
//! working in ordinary tests.
//!
//! Atomic locations are identified by the address of the facade object, so
//! facade objects must stay put for the duration of a model run (they
//! always do: protocols allocate them in `Arc`s up front).

use std::sync::PoisonError;

pub use std::sync::Arc;

#[cfg(feature = "model")]
use crate::model::current_ctx;
#[cfg(feature = "model")]
use crate::model::exec::Op;

/// Atomic integer and boolean facade types.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(feature = "model")]
    use crate::model::current_ctx;
    #[cfg(feature = "model")]
    use crate::model::exec::{Op, Ord as MOrd, Rmw};

    macro_rules! int_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            pub struct $name {
                inner: std::sync::atomic::$std,
                #[cfg(feature = "model")]
                init: u64,
            }

            impl $name {
                /// An atomic with the given initial value (usable in
                /// statics, like the std constructor).
                pub const fn new(v: $ty) -> $name {
                    $name {
                        inner: std::sync::atomic::$std::new(v),
                        #[cfg(feature = "model")]
                        init: v as u64,
                    }
                }

                #[cfg(feature = "model")]
                fn loc(&self) -> usize {
                    self as *const $name as usize
                }

                /// Loads the value.
                pub fn load(&self, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(ctx) = current_ctx() {
                        return ctx.exp.schedule_point(
                            ctx.tid,
                            Op::Load {
                                loc: self.loc(),
                                ord: MOrd::from_std(ord),
                                init: self.init,
                            },
                        ) as $ty;
                    }
                    self.inner.load(ord)
                }

                /// Stores a value.
                pub fn store(&self, val: $ty, ord: Ordering) {
                    #[cfg(feature = "model")]
                    if let Some(ctx) = current_ctx() {
                        ctx.exp.schedule_point(
                            ctx.tid,
                            Op::Store {
                                loc: self.loc(),
                                ord: MOrd::from_std(ord),
                                val: val as u64,
                                init: self.init,
                            },
                        );
                        return;
                    }
                    self.inner.store(val, ord);
                }

                #[cfg(feature = "model")]
                fn model_rmw(&self, rmw: Rmw, ord: Ordering) -> Option<$ty> {
                    current_ctx().map(|ctx| {
                        ctx.exp.schedule_point(
                            ctx.tid,
                            Op::Rmw {
                                loc: self.loc(),
                                ord: MOrd::from_std(ord),
                                rmw,
                                init: self.init,
                            },
                        ) as $ty
                    })
                }

                /// Adds to the value, returning the previous value.
                pub fn fetch_add(&self, val: $ty, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(Rmw::Add(val as u64), ord) {
                        return old;
                    }
                    self.inner.fetch_add(val, ord)
                }

                /// Subtracts from the value, returning the previous value.
                pub fn fetch_sub(&self, val: $ty, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(Rmw::Sub(val as u64), ord) {
                        return old;
                    }
                    self.inner.fetch_sub(val, ord)
                }

                /// Maximum of the value and `val`, returning the previous
                /// value.
                pub fn fetch_max(&self, val: $ty, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(Rmw::Max(val as u64), ord) {
                        return old;
                    }
                    self.inner.fetch_max(val, ord)
                }

                /// Bitwise-or, returning the previous value.
                pub fn fetch_or(&self, val: $ty, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(Rmw::Or(val as u64), ord) {
                        return old;
                    }
                    self.inner.fetch_or(val, ord)
                }

                /// Bitwise-and, returning the previous value.
                pub fn fetch_and(&self, val: $ty, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(Rmw::And(val as u64), ord) {
                        return old;
                    }
                    self.inner.fetch_and(val, ord)
                }

                /// Swaps in a new value, returning the previous value.
                pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(Rmw::Swap(val as u64), ord) {
                        return old;
                    }
                    self.inner.swap(val, ord)
                }

                /// Compare-and-exchange; `Ok(previous)` on success,
                /// `Err(actual)` on failure.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    #[cfg(feature = "model")]
                    if let Some(old) = self.model_rmw(
                        Rmw::Cas {
                            expect: current as u64,
                            new: new as u64,
                        },
                        success,
                    ) {
                        let _ = failure;
                        return if old == current { Ok(old) } else { Err(old) };
                    }
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl Default for $name {
                fn default() -> $name {
                    $name::new(0)
                }
            }
        };
    }

    int_atomic!(
        /// Facade over [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Facade over [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Facade over [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        AtomicU32,
        u32
    );

    /// Facade over [`std::sync::atomic::AtomicBool`] (modeled as a 0/1
    /// atomic word).
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
        #[cfg(feature = "model")]
        init: u64,
    }

    impl AtomicBool {
        /// An atomic with the given initial value.
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
                #[cfg(feature = "model")]
                init: v as u64,
            }
        }

        #[cfg(feature = "model")]
        fn loc(&self) -> usize {
            self as *const AtomicBool as usize
        }

        /// Loads the value.
        pub fn load(&self, ord: Ordering) -> bool {
            #[cfg(feature = "model")]
            if let Some(ctx) = current_ctx() {
                return ctx.exp.schedule_point(
                    ctx.tid,
                    Op::Load {
                        loc: self.loc(),
                        ord: MOrd::from_std(ord),
                        init: self.init,
                    },
                ) != 0;
            }
            self.inner.load(ord)
        }

        /// Stores a value.
        pub fn store(&self, val: bool, ord: Ordering) {
            #[cfg(feature = "model")]
            if let Some(ctx) = current_ctx() {
                ctx.exp.schedule_point(
                    ctx.tid,
                    Op::Store {
                        loc: self.loc(),
                        ord: MOrd::from_std(ord),
                        val: val as u64,
                        init: self.init,
                    },
                );
                return;
            }
            self.inner.store(val, ord);
        }

        /// Swaps in a new value, returning the previous value.
        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            #[cfg(feature = "model")]
            if let Some(ctx) = current_ctx() {
                return ctx.exp.schedule_point(
                    ctx.tid,
                    Op::Rmw {
                        loc: self.loc(),
                        ord: MOrd::from_std(ord),
                        rmw: Rmw::Swap(val as u64),
                        init: self.init,
                    },
                ) != 0;
            }
            self.inner.swap(val, ord)
        }

        /// Bitwise-or, returning the previous value.
        pub fn fetch_or(&self, val: bool, ord: Ordering) -> bool {
            #[cfg(feature = "model")]
            if let Some(ctx) = current_ctx() {
                return ctx.exp.schedule_point(
                    ctx.tid,
                    Op::Rmw {
                        loc: self.loc(),
                        ord: MOrd::from_std(ord),
                        rmw: Rmw::Or(val as u64),
                        init: self.init,
                    },
                ) != 0;
            }
            self.inner.fetch_or(val, ord)
        }

        /// Compare-and-exchange; `Ok(previous)` on success, `Err(actual)`
        /// on failure.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            #[cfg(feature = "model")]
            if let Some(ctx) = current_ctx() {
                let _ = failure;
                let old = ctx.exp.schedule_point(
                    ctx.tid,
                    Op::Rmw {
                        loc: self.loc(),
                        ord: MOrd::from_std(success),
                        rmw: Rmw::Cas {
                            expect: current as u64,
                            new: new as u64,
                        },
                        init: self.init,
                    },
                ) != 0;
                return if old == current { Ok(old) } else { Err(old) };
            }
            self.inner.compare_exchange(current, new, success, failure)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.load(Ordering::Relaxed))
                .finish()
        }
    }

    impl Default for AtomicBool {
        fn default() -> AtomicBool {
            AtomicBool::new(false)
        }
    }
}

/// A mutual-exclusion lock with a non-poisoning, `parking_lot`-style API.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    #[cfg(feature = "model")]
    fn loc(&self) -> usize {
        self as *const Mutex<T> as usize
    }

    fn phys_lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp
                .schedule_point(ctx.tid, Op::MutexLock { loc: self.loc() });
            return MutexGuard {
                lock: self,
                inner: Some(self.phys_lock()),
                #[cfg(feature = "model")]
                model: true,
            };
        }
        MutexGuard {
            lock: self,
            inner: Some(self.phys_lock()),
            #[cfg(feature = "model")]
            model: false,
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            let got = ctx
                .exp
                .schedule_point(ctx.tid, Op::MutexTryLock { loc: self.loc() });
            if got == 0 {
                return None;
            }
            return Some(MutexGuard {
                lock: self,
                inner: Some(self.phys_lock()),
                model: true,
            });
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
                #[cfg(feature = "model")]
                model: false,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                #[cfg(feature = "model")]
                model: false,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(feature = "model")]
    model: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(feature = "model")]
            if self.model {
                if let Some(ctx) = current_ctx() {
                    ctx.exp.mutex_unlock(ctx.tid, self.lock.loc());
                }
            }
            let _ = self.lock;
        }
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[cfg(feature = "model")]
    fn loc(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Atomically releases the guard's mutex and waits for a notification,
    /// then re-acquires before returning. As with the real primitive,
    /// callers must re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(feature = "model")]
        if guard.model {
            let ctx = current_ctx().expect("model guard outlived its model run");
            let lock = guard.lock;
            // Disarm the guard: the model releases the mutex itself as the
            // first half of the wait.
            drop(guard.inner.take());
            guard.model = false;
            drop(guard);
            ctx.exp.cv_wait(ctx.tid, self.loc(), lock.loc());
            return MutexGuard {
                lock,
                inner: Some(lock.phys_lock()),
                model: true,
            };
        }
        let lock = guard.lock;
        let phys = guard.inner.take().expect("guard holds the lock");
        #[cfg(feature = "model")]
        {
            guard.model = false;
        }
        drop(guard);
        let phys = self
            .inner
            .wait(phys)
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock,
            inner: Some(phys),
            #[cfg(feature = "model")]
            model: false,
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp.cv_notify(ctx.tid, self.loc(), false);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp.cv_notify(ctx.tid, self.loc(), true);
            return;
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// A reader-writer lock with a non-poisoning, `parking_lot`-style API.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    #[cfg(feature = "model")]
    fn loc(&self) -> usize {
        self as *const RwLock<T> as usize
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp
                .schedule_point(ctx.tid, Op::RwRead { loc: self.loc() });
            return RwLockReadGuard {
                lock: self,
                inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
                model: true,
            };
        }
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(feature = "model")]
            model: false,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp
                .schedule_point(ctx.tid, Op::RwWrite { loc: self.loc() });
            return RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
                model: true,
            };
        }
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(feature = "model")]
            model: false,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    #[cfg(feature = "model")]
    model: bool,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(feature = "model")]
            if self.model {
                if let Some(ctx) = current_ctx() {
                    ctx.exp.rw_read_unlock(ctx.tid, self.lock.loc());
                }
            }
            let _ = self.lock;
        }
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    #[cfg(feature = "model")]
    model: bool,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(feature = "model")]
            if self.model {
                if let Some(ctx) = current_ctx() {
                    ctx.exp.rw_write_unlock(ctx.tid, self.lock.loc());
                }
            }
            let _ = self.lock;
        }
    }
}

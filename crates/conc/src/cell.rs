//! [`RaceCell`]: shared data *modeled as unsynchronized* so the model's
//! vector-clock race detector can flag concurrent access.
//!
//! The workspace forbids `unsafe`, so the cell's storage is a private
//! `std::sync::Mutex` — physically it can never tear. Under the model,
//! though, every access is checked against the happens-before relation
//! exactly as if the cell were a plain, unprotected field: two accesses
//! (at least one a write) from different threads that are not ordered by
//! locks/atomics/spawn/join fail the run with a replayable trace. Outside
//! a model run the accessors are just cheap mutex operations.

use std::sync::PoisonError;

#[cfg(feature = "model")]
use crate::model::current_ctx;
#[cfg(feature = "model")]
use crate::model::exec::Op;

/// A shared cell whose accesses are race-checked under the model.
pub struct RaceCell<T> {
    inner: std::sync::Mutex<T>,
    /// Shown in race reports to identify the field.
    what: &'static str,
}

impl<T> RaceCell<T> {
    /// A new cell holding `value`; `what` names the protected data in race
    /// reports (e.g. `"ring slot"`).
    pub const fn new(what: &'static str, value: T) -> RaceCell<T> {
        RaceCell {
            inner: std::sync::Mutex::new(value),
            what,
        }
    }

    #[cfg(feature = "model")]
    fn loc(&self) -> usize {
        self as *const RaceCell<T> as usize
    }

    fn storage(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reads via `f`. A *read access* for the race detector.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp.schedule_point(
                ctx.tid,
                Op::CellRead {
                    loc: self.loc(),
                    what: self.what,
                },
            );
        }
        f(&self.storage())
    }

    /// Mutates via `f`. A *write access* for the race detector.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(feature = "model")]
        if let Some(ctx) = current_ctx() {
            ctx.exp.schedule_point(
                ctx.tid,
                Op::CellWrite {
                    loc: self.loc(),
                    what: self.what,
                },
            );
        }
        f(&mut self.storage())
    }
}

impl<T: Copy> RaceCell<T> {
    /// Reads the value (a read access).
    pub fn get(&self) -> T {
        self.with(|v| *v)
    }

    /// Replaces the value (a write access).
    pub fn set(&self, value: T) {
        self.with_mut(|v| *v = value);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceCell")
            .field("what", &self.what)
            .finish_non_exhaustive()
    }
}

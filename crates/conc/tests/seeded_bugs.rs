//! Seeded-bug regression suite (satellite S5): each test injects a known
//! concurrency bug — a deliberately weakened ordering or a broken protocol
//! step — and asserts the model checker catches it *and* that the recorded
//! schedule replays to the same failure deterministically.
//!
//! These are the checker's own regression tests: if a future change to the
//! scheduler or the vector-clock detector stops catching any of these, the
//! suite fails.
#![cfg(feature = "model")]

use mmdb_conc::cell::RaceCell;
use mmdb_conc::model::Model;
use mmdb_conc::sync::atomic::{AtomicU64, Ordering};
use mmdb_conc::sync::{Arc, Condvar, Mutex};
use mmdb_conc::thread;

/// Runs `scenario` expecting a failure, then replays the recorded schedule
/// and asserts the identical failure reproduces (message and schedule).
fn assert_caught_and_replayable(name: &str, scenario: fn()) -> String {
    let report = Model::new().check(scenario);
    let failure = report.expect_failure().clone();
    let replayed = Model::new()
        .replay(scenario, &failure.schedule)
        .unwrap_or_else(|| panic!("{name}: replay of recorded schedule did not fail"));
    assert_eq!(
        replayed.message, failure.message,
        "{name}: replay produced a different failure"
    );
    assert_eq!(
        replayed.schedule, failure.schedule,
        "{name}: replay diverged from recorded schedule"
    );
    failure.message
}

/// Bug 1: the mutation-epoch bump weakened to `Relaxed`. The bump no
/// longer publishes the catalog write, so a reader that observes the new
/// epoch races the catalog mutation — caught by the vector-clock detector.
fn relaxed_epoch_publication() {
    let epoch = Arc::new(AtomicU64::new(0));
    let catalog = Arc::new(RaceCell::new("catalog row", 0u64));
    let w = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            catalog.set(1);
            // BUG: should be Release (production uses AcqRel via
            // `MutationEpoch::bump`).
            epoch.store(1, Ordering::Relaxed);
        })
    };
    let r = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            if epoch.load(Ordering::Acquire) == 1 {
                let _ = catalog.get();
            }
        })
    };
    w.join().unwrap();
    r.join().unwrap();
}

#[test]
fn catches_relaxed_epoch_publication() {
    let msg = assert_caught_and_replayable("relaxed_epoch_publication", relaxed_epoch_publication);
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

/// Bug 2: the epoch *read* weakened to `Relaxed`. Even with a correct
/// release-side bump, the reader acquires nothing — same race, other side.
fn relaxed_epoch_observation() {
    let epoch = Arc::new(AtomicU64::new(0));
    let catalog = Arc::new(RaceCell::new("catalog row", 0u64));
    let w = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            catalog.set(1);
            epoch.store(1, Ordering::Release);
        })
    };
    let r = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            // BUG: should be Acquire (production uses
            // `MutationEpoch::current`).
            if epoch.load(Ordering::Relaxed) == 1 {
                let _ = catalog.get();
            }
        })
    };
    w.join().unwrap();
    r.join().unwrap();
}

#[test]
fn catches_relaxed_epoch_observation() {
    let msg = assert_caught_and_replayable("relaxed_epoch_observation", relaxed_epoch_observation);
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

/// Bug 3: the bound-index slow path captures the epoch *after* reading the
/// catalog snapshot. A mutation landing between the two leaves the stamp
/// ahead of the data — the slot then serves stale data as fresh.
fn epoch_captured_after_snapshot() {
    let epoch = Arc::new(AtomicU64::new(0));
    let catalog = Arc::new(Mutex::new(0u64));
    let w = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            *catalog.lock() += 1;
            epoch.fetch_add(1, Ordering::AcqRel);
        })
    };
    let r = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            // BUG: snapshot first, stamp second — production captures the
            // epoch before reading any catalog state (see
            // `EpochSlot::write` docs and `with_bound_index`).
            let snap = *catalog.lock();
            let stamp = epoch.load(Ordering::Acquire);
            assert!(
                snap >= stamp,
                "stale value {snap} stamped fresh at epoch {stamp}"
            );
        })
    };
    w.join().unwrap();
    r.join().unwrap();
}

#[test]
fn catches_epoch_captured_after_snapshot() {
    let msg = assert_caught_and_replayable(
        "epoch_captured_after_snapshot",
        epoch_captured_after_snapshot,
    );
    assert!(msg.contains("stale value"), "unexpected failure: {msg}");
}

/// Bug 4: a ring writer publishing its slot without the slot mutex. The
/// head counter's `Relaxed` fetch_add is fine *only because* the slot
/// mutex is the publication edge; removing the mutex reintroduces the race.
fn ring_slot_published_without_mutex() {
    let head = Arc::new(AtomicU64::new(0));
    let slot = Arc::new(RaceCell::new("ring slot", (0u64, 0u64)));
    let w = {
        let (head, slot) = (Arc::clone(&head), Arc::clone(&slot));
        thread::spawn(move || {
            let seq = head.fetch_add(1, Ordering::Relaxed);
            // BUG: production wraps this in the slot's Mutex.
            slot.set((seq, 42));
        })
    };
    let d = {
        let (head, slot) = (Arc::clone(&head), Arc::clone(&slot));
        thread::spawn(move || {
            if head.load(Ordering::Relaxed) > 0 {
                let _ = slot.get();
            }
        })
    };
    w.join().unwrap();
    d.join().unwrap();
}

#[test]
fn catches_ring_slot_published_without_mutex() {
    let msg = assert_caught_and_replayable(
        "ring_slot_published_without_mutex",
        ring_slot_published_without_mutex,
    );
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

/// Bug 5: a consumer re-checking the queue with `if` instead of a loop.
/// With two consumers and one item, `notify_all` wakes both; the loser
/// finds the queue empty — the classic wait-predicate bug. Depending on
/// the interleaving this surfaces as the empty-pop panic or as a deadlock
/// (a consumer parked forever after a missed wakeup); both are failures.
fn condvar_if_instead_of_while() {
    let q = Arc::new((Mutex::new(Vec::<u32>::new()), Condvar::new()));
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let (lock, cv) = &*q;
                let mut items = lock.lock();
                // BUG: must be `while items.is_empty()`.
                if items.is_empty() {
                    items = cv.wait(items);
                }
                assert!(!items.is_empty(), "woke to an empty queue");
                items.pop();
            })
        })
        .collect();
    let (lock, cv) = &*q;
    lock.lock().push(7);
    cv.notify_all();
    for c in consumers {
        c.join().unwrap();
    }
}

#[test]
fn catches_condvar_if_instead_of_while() {
    let msg =
        assert_caught_and_replayable("condvar_if_instead_of_while", condvar_if_instead_of_while);
    assert!(
        msg.contains("woke to an empty queue") || msg.contains("deadlock"),
        "unexpected failure: {msg}"
    );
}

//! The facade outside a model run: with no scheduler context (whether or
//! not the `model` feature is compiled in), every wrapper must behave as a
//! plain std primitive — real threads, real atomics, real blocking. This
//! is the configuration every production binary runs.

use mmdb_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use mmdb_conc::sync::{Arc, Condvar, Mutex, RwLock};
use mmdb_conc::thread;

#[test]
fn atomics_pass_through() {
    let a = AtomicU64::new(5);
    assert_eq!(a.load(Ordering::SeqCst), 5);
    a.store(7, Ordering::Release);
    assert_eq!(a.fetch_add(1, Ordering::AcqRel), 7);
    assert_eq!(a.swap(2, Ordering::SeqCst), 8);
    assert_eq!(
        a.compare_exchange(2, 3, Ordering::SeqCst, Ordering::Relaxed),
        Ok(2)
    );
    assert_eq!(a.fetch_max(10, Ordering::Relaxed), 3);
    let b = AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::SeqCst));
    assert!(b.load(Ordering::Acquire));
}

#[test]
fn locks_pass_through() {
    let m = Mutex::new(1);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    assert!(m.try_lock().is_some());
    let rw = RwLock::new(vec![1, 2]);
    assert_eq!(rw.read().len(), 2);
    rw.write().push(3);
    assert_eq!(*rw.read(), vec![1, 2, 3]);
}

#[test]
fn threads_and_condvars_pass_through() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let worker = {
        let pair = Arc::clone(&pair);
        thread::spawn(move || {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
            21 * 2
        })
    };
    let (lock, cv) = &*pair;
    let mut ready = lock.lock();
    while !*ready {
        ready = cv.wait(ready);
    }
    drop(ready);
    assert_eq!(worker.join().unwrap(), 42);
}

#[test]
fn counters_accumulate_across_real_threads() {
    let n = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                for _ in 0..100 {
                    n.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n.load(Ordering::SeqCst), 400);
}

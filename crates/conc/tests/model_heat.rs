//! Model-checks the sharded query-heat table using the *real*
//! [`mmdb_telemetry::HeatTable`]: concurrent recorders racing each other
//! and a racing decay tick, with the table forced onto a single shard so
//! the writers genuinely contend on the same `AtomicU64` slot.
//!
//! Invariants (referenced by the `Ordering::Relaxed` comments in
//! `crates/telemetry/src/heat.rs`):
//!
//! * **No lost records**: the lifetime `total` equals the number of
//!   `record` calls exactly — `fetch_add` RMWs lose nothing regardless of
//!   interleaving.
//! * **Decay never loses a racing record**: the decay CAS loop retries on
//!   top of a concurrent `fetch_add`, so final heat is bounded below by
//!   "every record decayed" and above by "no record decayed" — a record
//!   can never vanish entirely.
#![cfg(feature = "model")]

use mmdb_conc::model::Model;
use mmdb_conc::sync::Arc;
use mmdb_conc::thread;
use mmdb_telemetry::HeatTable;
use std::time::Duration;

const HALF_LIFE: Duration = Duration::from_secs(10);

/// The per-tick decay factor matching `HALF_LIFE` (one 1s tick).
fn tick_factor() -> f64 {
    0.5f64.powf(1.0 / HALF_LIFE.as_secs_f64())
}

#[test]
fn racing_recorders_lose_nothing() {
    Model::new()
        .check(|| {
            let table = Arc::new(HeatTable::with_shards(1));
            table.set_half_life(HALF_LIFE);

            let writers: Vec<_> = (0..2)
                .map(|_| {
                    let table = Arc::clone(&table);
                    thread::spawn(move || table.record(3, 1, 0))
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }

            assert_eq!(
                table.total_of(3, 1, 0),
                2,
                "a racing record was lost from the lifetime total"
            );
            let heat = table.heat_of(3, 1, 0);
            assert!(
                (heat - 2.0).abs() < 1e-9,
                "undecayed heat must equal the record count, got {heat}"
            );
        })
        .assert_ok();
}

#[test]
fn decay_tick_racing_recorders_bounds_heat() {
    // The decay sweep loads every slot of the 2056-slot table, and each
    // load is a schedule point, so exhaustive exploration is expensive; a
    // bounded DFS plus seeded-random schedules still covers every
    // tick/record ordering around the contended slot.
    Model::new()
        .max_schedules(400)
        .random_iters(100)
        .check(|| {
            let table = Arc::new(HeatTable::with_shards(1));
            table.set_half_life(HALF_LIFE);

            let mut handles: Vec<_> = (0..2)
                .map(|_| {
                    let table = Arc::clone(&table);
                    thread::spawn(move || table.record(3, 1, 0))
                })
                .collect();
            let decayer = {
                let table = Arc::clone(&table);
                thread::spawn(move || table.decay_ticks(1))
            };
            handles.push(decayer);
            for h in handles {
                h.join().unwrap();
            }

            // Totals ignore decay: still exactly 2.
            assert_eq!(table.total_of(3, 1, 0), 2);

            // Each record contributes either decayed or undecayed heat
            // depending on where the tick landed; fixed-point flooring can
            // only shave fractions off the lower bound.
            let heat = table.heat_of(3, 1, 0);
            let f = tick_factor();
            let lower = 2.0 * f - 1e-6;
            let upper = 2.0 + 1e-9;
            assert!(
                heat >= lower && heat <= upper,
                "heat {heat} outside [{lower}, {upper}] — a record was lost or duplicated"
            );
        })
        .assert_ok();
}

//! Model-checks the bound-index freshness protocol: an
//! [`mmdb_boundidx::EpochSlot`] guarded by the *real*
//! [`mmdb_storage::MutationEpoch`], exercised by concurrent readers
//! (fast-path probe + slow-path re-sync) and an invalidating writer — the
//! exact shape of `MultimediaDatabase::with_bound_index`.
//!
//! Invariant: **no stale bound interval is ever served after an
//! invalidating write.** Operationally: a served value's stamp never leads
//! the catalog state it reflects (`value >= stamp` in this model, where the
//! k-th mutation sets the catalog to `k` and the epoch to `k`), and once
//! the writer is joined, every read serves the post-mutation value.
#![cfg(feature = "model")]

use mmdb_boundidx::{EpochSlot, EpochStamped};
use mmdb_conc::model::Model;
use mmdb_conc::sync::{Arc, Mutex};
use mmdb_conc::thread;
use mmdb_storage::MutationEpoch;

/// Stand-in for a `BoundIndex`: the memoized value plus the epoch stamp of
/// the catalog snapshot it was computed from.
struct Cached {
    stamp: u64,
    value: u64,
}

impl EpochStamped for Cached {
    fn stamp(&self) -> u64 {
        self.stamp
    }
}

/// The reader protocol from `with_bound_index`: probe the slot at the
/// current epoch; on miss take the write lock, capture the epoch *before*
/// reading the catalog, re-sync, serve. Returns `(value, stamp)` served.
fn read(slot: &EpochSlot<Cached>, epoch: &MutationEpoch, catalog: &Mutex<u64>) -> (u64, u64) {
    let e = epoch.current();
    if let Some(served) = slot.serve_fresh(e, |c| (c.value, c.stamp)) {
        return served;
    }
    let mut guard = slot.write();
    // Epoch first, catalog second: a mutation racing this snapshot leaves
    // the stamp *behind* the real epoch, so the worst case is a spurious
    // re-sync on the next query — never a stale serve.
    let e2 = epoch.current();
    let snap = *catalog.lock();
    *guard = Some(Cached {
        stamp: e2,
        value: snap,
    });
    (snap, e2)
}

/// The writer protocol: mutate the catalog under its lock, then bump the
/// epoch (matching `StorageEngine`: the bump happens after the catalog
/// state is updated).
fn invalidating_write(epoch: &MutationEpoch, catalog: &Mutex<u64>) {
    {
        let mut g = catalog.lock();
        *g += 1;
    }
    epoch.bump();
}

#[test]
fn no_stale_serve_after_invalidating_write() {
    Model::new()
        .check(|| {
            let epoch = Arc::new(MutationEpoch::new());
            let catalog = Arc::new(Mutex::new(0u64));
            let slot = Arc::new(EpochSlot::new());
            // Slot starts synced to the initial catalog (value 0, epoch 0).
            *slot.write() = Some(Cached { stamp: 0, value: 0 });

            let w = {
                let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
                thread::spawn(move || invalidating_write(&epoch, &catalog))
            };
            let r = {
                let (epoch, catalog, slot) =
                    (Arc::clone(&epoch), Arc::clone(&catalog), Arc::clone(&slot));
                thread::spawn(move || {
                    let (v, s) = read(&slot, &epoch, &catalog);
                    // A racing reader may legitimately serve the *old* state
                    // at the *old* stamp, or newer data with a lagging stamp
                    // — but never old data with a fresh stamp.
                    assert!(v >= s, "stale value {v} served with fresh stamp {s}");
                })
            };
            w.join().unwrap();
            r.join().unwrap();

            // The write is now completed and observed (join edge): the old
            // cached value must be refused and the re-sync must serve the
            // post-mutation catalog.
            let (v, s) = read(&slot, &epoch, &catalog);
            assert_eq!((v, s), (1, 1), "stale bound interval served after write");
        })
        .assert_ok();
}

/// Two concurrent readers re-syncing the same slot never clobber a fresh
/// value with a stale one that would then be *served* as fresh.
#[test]
fn racing_resyncs_stay_monotone_at_serve_time() {
    Model::new()
        .check(|| {
            let epoch = Arc::new(MutationEpoch::new());
            let catalog = Arc::new(Mutex::new(0u64));
            let slot = Arc::new(EpochSlot::<Cached>::new());

            let w = {
                let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
                thread::spawn(move || invalidating_write(&epoch, &catalog))
            };
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let (epoch, catalog, slot) =
                        (Arc::clone(&epoch), Arc::clone(&catalog), Arc::clone(&slot));
                    thread::spawn(move || {
                        let (v, s) = read(&slot, &epoch, &catalog);
                        assert!(v >= s, "stale value {v} served with fresh stamp {s}");
                    })
                })
                .collect();
            w.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
            let (v, s) = read(&slot, &epoch, &catalog);
            assert_eq!((v, s), (1, 1));
        })
        .assert_ok();
}

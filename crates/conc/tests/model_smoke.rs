//! Scheduler smoke tests: canonical litmus shapes the checker must get
//! right before the real protocol models mean anything.

#![cfg(feature = "model")]

use mmdb_conc::cell::RaceCell;
use mmdb_conc::model::Model;
use mmdb_conc::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use mmdb_conc::sync::{Arc, Condvar, Mutex};
use mmdb_conc::thread;

#[test]
fn two_increments_always_sum() {
    Model::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let h = thread::spawn(move || {
                x2.fetch_add(1, Ordering::AcqRel);
            });
            x.fetch_add(1, Ordering::AcqRel);
            h.join().unwrap();
            assert_eq!(x.load(Ordering::Acquire), 2);
        })
        .assert_ok();
}

#[test]
fn torn_counter_with_plain_loads_is_caught() {
    // load + store (not an RMW) loses increments under interleaving: the
    // DFS must find a schedule where both threads read 0.
    let report = Model::new().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let h = thread::spawn(move || {
            let v = x2.load(Ordering::SeqCst);
            x2.store(v + 1, Ordering::SeqCst);
        });
        let v = x.load(Ordering::SeqCst);
        x.store(v + 1, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.expect_failure();
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
}

#[test]
fn release_acquire_publication_is_clean() {
    Model::new()
        .check(|| {
            let data = Arc::new(RaceCell::new("payload", 0u32));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = thread::spawn(move || {
                d2.set(7);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.get(), 7);
            }
            h.join().unwrap();
        })
        .assert_ok();
}

#[test]
fn relaxed_publication_race_is_caught() {
    // Same shape, but the flag store is Relaxed: no happens-before edge to
    // the reader, so the RaceCell access is a data race.
    let report = Model::new().check(|| {
        let data = Arc::new(RaceCell::new("payload", 0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let h = thread::spawn(move || {
            d2.set(7);
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            let _ = data.get();
        }
        h.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        failure.message.contains("data race on payload"),
        "{}",
        failure.message
    );
}

#[test]
fn relaxed_load_observes_stale_value() {
    // x=1 published under a Release flag, but the consumer reads the flag
    // Relaxed: the model must exhibit an execution where the flag is seen
    // set while x still reads 0.
    let report = Model::new().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (x2, f2) = (Arc::clone(&x), Arc::clone(&flag));
        let h = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(x.load(Ordering::Relaxed), 1, "stale read");
        }
        h.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        failure.message.contains("stale read"),
        "{}",
        failure.message
    );
}

#[test]
fn acquire_load_never_observes_stale_value() {
    // The correctly-ordered variant of the test above must pass: an
    // Acquire load of the flag pulls in the Release store's clock.
    Model::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (x2, f2) = (Arc::clone(&x), Arc::clone(&flag));
            let h = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(x.load(Ordering::Relaxed), 1);
            }
            h.join().unwrap();
        })
        .assert_ok();
}

#[test]
fn abba_deadlock_is_caught() {
    let report = Model::new().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        h.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

#[test]
fn mutex_protects_plain_data() {
    Model::new()
        .check(|| {
            let cell = Arc::new(Mutex::new(0u32));
            let c2 = Arc::clone(&cell);
            let h = thread::spawn(move || {
                *c2.lock() += 1;
            });
            *cell.lock() += 1;
            h.join().unwrap();
            assert_eq!(*cell.lock(), 2);
        })
        .assert_ok();
}

#[test]
fn condvar_handshake_completes() {
    Model::new()
        .check(|| {
            let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
            let s2 = Arc::clone(&slot);
            let h = thread::spawn(move || {
                let (m, cv) = &*s2;
                *m.lock() = Some(42);
                cv.notify_one();
            });
            let (m, cv) = &*slot;
            let mut guard = m.lock();
            while guard.is_none() {
                guard = cv.wait(guard);
            }
            assert_eq!(*guard, Some(42));
            drop(guard);
            h.join().unwrap();
        })
        .assert_ok();
}

#[test]
fn failure_replays_deterministically() {
    let build = || {
        let x = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (x2, f2) = (Arc::clone(&x), Arc::clone(&flag));
        let h = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(x.load(Ordering::Relaxed), 1, "stale read");
        }
        h.join().unwrap();
    };
    let report = Model::new().check(build);
    let failure = report.expect_failure().clone();
    let replayed = Model::new()
        .replay(build, &failure.schedule)
        .expect("replay reproduces the failure");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(replayed.schedule, failure.schedule);
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn exploration_is_exhaustive_for_small_models() {
    let report = Model::new().check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let h = thread::spawn(move || {
            x2.fetch_add(1, Ordering::AcqRel);
        });
        x.fetch_add(2, Ordering::AcqRel);
        h.join().unwrap();
    });
    assert!(report.failure.is_none());
    assert!(report.exhausted, "small model should exhaust: {report:?}");
    assert!(report.schedules >= 2, "{report:?}");
}

//! Model-checks the flight-recorder ring protocol using the *real*
//! [`mmdb_telemetry::FlightRecorder`]: concurrent `record`s and a racing
//! drain, on a capacity-2 ring so writers genuinely contend for slots.
//!
//! Invariants (referenced by the `Ordering::Relaxed` comment on the head
//! counter in `crates/telemetry/src/recorder.rs`):
//!
//! * **No tear**: every drained event is internally consistent — the
//!   payload belongs to the seq it claims (the slot mutex, not the head
//!   counter, publishes the event).
//! * **No double-drain / duplication**: drained seqs are unique and
//!   strictly increasing.
//! * **Quiescent completeness**: once writers are joined, the drain
//!   returns exactly the last `capacity` events.
#![cfg(feature = "model")]

use mmdb_conc::model::Model;
use mmdb_conc::sync::Arc;
use mmdb_conc::thread;
use mmdb_telemetry::{Event, EventKind, FlightRecorder};

/// Writer `i` records one event whose detail and counts both encode `i`;
/// a torn slot would pair a payload with the wrong seq or mix payloads.
fn record_tagged(rec: &FlightRecorder, i: u64) {
    rec.record(
        EventKind::QueryStart,
        format!("writer-{i}"),
        &[("writer", i)],
    );
}

fn assert_consistent(events: &[Event]) {
    let mut prev: Option<u64> = None;
    for e in events {
        // Strictly increasing seqs: no duplicate, no reordering, no
        // double-drain of one slot.
        if let Some(p) = prev {
            assert!(
                e.seq > p,
                "drained seqs not strictly increasing: {p} then {}",
                e.seq
            );
        }
        prev = Some(e.seq);
        // Payload integrity: detail and counts were written together under
        // the slot mutex; a tear would decouple them.
        let tag = e.counts.first().expect("counts present").1;
        assert_eq!(
            e.detail,
            format!("writer-{tag}"),
            "torn event: detail/counts mismatch at seq {}",
            e.seq
        );
    }
}

#[test]
fn ring_never_tears_or_double_drains() {
    Model::new()
        .check(|| {
            let rec = Arc::new(FlightRecorder::with_capacity(2));

            let writers: Vec<_> = (1..=2u64)
                .map(|i| {
                    let rec = Arc::clone(&rec);
                    thread::spawn(move || record_tagged(&rec, i))
                })
                .collect();

            // A drain racing the writers sees a consistent (possibly
            // shorter) suffix — never a torn or duplicated event.
            assert_consistent(&rec.events());

            for w in writers {
                w.join().unwrap();
            }

            // Quiescent: both events retained, seqs 0 and 1, intact.
            let after = rec.events();
            assert_eq!(after.len(), 2, "event lost after writers joined");
            assert_consistent(&after);
            assert_eq!(after.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
            assert_eq!(rec.recorded_total(), 2);
        })
        .assert_ok();
}

/// Three writers on a capacity-2 ring: one event is lapped. The drain must
/// still be consistent and return exactly the two newest seqs.
#[test]
fn lapped_ring_keeps_consistent_suffix() {
    Model::new()
        .check(|| {
            let rec = Arc::new(FlightRecorder::with_capacity(2));
            let writers: Vec<_> = (1..=3u64)
                .map(|i| {
                    let rec = Arc::clone(&rec);
                    thread::spawn(move || record_tagged(&rec, i))
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            let after = rec.events();
            assert_consistent(&after);
            assert_eq!(rec.recorded_total(), 3);
            // seq 0 was lapped by seq 2 (same slot, capacity 2).
            assert_eq!(after.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
        })
        .assert_ok();
}

//! Model-checks the storage mutation-epoch protocol (PR: concurrency
//! checking layer) using the *real* [`mmdb_storage::MutationEpoch`] type —
//! the same atomic and orderings production code runs.
//!
//! Protocol under test (see `DESIGN.md`, "Appendix: the mutation-epoch
//! protocol"): every catalog mutation bumps the epoch with `AcqRel`;
//! readers load it with `Acquire`. The bump therefore *publishes* the
//! mutation — any reader that observes the new epoch value also observes
//! the catalog writes that preceded the bump.
#![cfg(feature = "model")]

use mmdb_conc::cell::RaceCell;
use mmdb_conc::model::Model;
use mmdb_conc::sync::Arc;
use mmdb_conc::thread;
use mmdb_storage::MutationEpoch;

/// The core publication guarantee: a reader that observes the bumped epoch
/// must also observe the catalog mutation that preceded the bump. The
/// catalog is a [`RaceCell`] — no lock of its own — so the epoch atomic is
/// the *only* happens-before edge; if `bump`/`current` were weaker than
/// release/acquire the vector-clock detector would flag the read.
#[test]
fn bump_publishes_catalog_mutation() {
    Model::new()
        .check(|| {
            let epoch = Arc::new(MutationEpoch::new());
            let catalog = Arc::new(RaceCell::new("catalog row", 0u64));

            let w = {
                let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
                thread::spawn(move || {
                    catalog.set(1);
                    epoch.bump();
                })
            };
            let r = {
                let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
                thread::spawn(move || {
                    if epoch.current() >= 1 {
                        // Epoch observed => mutation observed. A stale value
                        // here is exactly "serving stale state after an
                        // invalidating write".
                        assert_eq!(catalog.get(), 1, "stale catalog read after epoch bump");
                    }
                })
            };
            w.join().unwrap();
            r.join().unwrap();
        })
        .assert_ok();
}

/// After joining the mutator, the new epoch is visible — a cached value
/// stamped with the old epoch can never pass the freshness check again.
#[test]
fn completed_mutation_invalidates_old_stamp() {
    Model::new()
        .check(|| {
            let epoch = Arc::new(MutationEpoch::new());
            let stamp_at_build = epoch.current();

            let w = {
                let epoch = Arc::clone(&epoch);
                thread::spawn(move || epoch.bump())
            };
            w.join().unwrap();

            let now = epoch.current();
            assert_eq!(now, 1, "join must make the bump visible");
            assert_ne!(
                stamp_at_build, now,
                "stale stamp would wrongly pass the freshness check"
            );
        })
        .assert_ok();
}

/// Concurrent mutators never lose a bump: the epoch is a single RMW, so
/// two racing `bump`s always sum.
#[test]
fn concurrent_bumps_never_lost() {
    Model::new()
        .check(|| {
            let epoch = Arc::new(MutationEpoch::new());
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let epoch = Arc::clone(&epoch);
                    thread::spawn(move || epoch.bump())
                })
                .collect();
            let mut returned: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            returned.sort_unstable();
            assert_eq!(returned, vec![1, 2], "bump return values must be unique");
            assert_eq!(epoch.current(), 2, "a bump was lost");
        })
        .assert_ok();
}

//! Model-checks the worker-pool submission/drain handshake using the
//! *real* [`mmdb_server::BoundedQueue`]: producers `try_push`, a consumer
//! `pop`s until `None`, the main thread `close`s after producers finish.
//!
//! Invariant: **drain never loses an accepted request** — every item whose
//! `try_push` returned `Ok` is popped exactly once before the consumer
//! observes `None`, and rejected items are never popped. Lost condvar
//! wakeups surface as model deadlocks.
#![cfg(feature = "model")]

use mmdb_conc::model::Model;
use mmdb_conc::sync::Arc;
use mmdb_conc::thread;
use mmdb_server::BoundedQueue;

#[test]
fn drain_never_loses_accepted_request() {
    Model::new()
        .check(|| {
            let q = Arc::new(BoundedQueue::new(4));

            let producer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 1..=2u32 {
                        if q.try_push(i).is_ok() {
                            accepted.push(i);
                        }
                    }
                    accepted
                })
            };
            let consumer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            };

            let accepted = producer.join().unwrap();
            // Graceful-shutdown contract: close after submissions stop; the
            // consumer drains the backlog and then observes `None`.
            q.close();
            let got = consumer.join().unwrap();

            // Capacity 4 never rejects here, so both submissions were
            // accepted — and both must come out, in FIFO order, exactly once.
            assert_eq!(accepted, vec![1, 2]);
            assert_eq!(
                got,
                vec![1, 2],
                "accepted request lost or duplicated in drain"
            );
        })
        .assert_ok();
}

/// Admission control under contention: with capacity 1 and a racing
/// consumer, any subset of submissions may be refused `Full` — but the
/// drained multiset must equal the accepted multiset exactly.
#[test]
fn rejected_items_never_surface_accepted_always_do() {
    Model::new()
        .check(|| {
            let q = Arc::new(BoundedQueue::new(1));

            let producers: Vec<_> = (1..=2u32)
                .map(|i| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || q.try_push(i).ok().map(|()| i))
                })
                .collect();
            let consumer = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            };

            let mut accepted: Vec<u32> = producers
                .into_iter()
                .filter_map(|h| h.join().unwrap())
                .collect();
            q.close();
            let mut got = consumer.join().unwrap();

            accepted.sort_unstable();
            got.sort_unstable();
            assert_eq!(
                got, accepted,
                "drained items must be exactly the accepted items"
            );
        })
        .assert_ok();
}

//! Acceptance gate for the concurrency checking layer: across the four
//! protocol models (storage epoch, bound-index slot, recorder ring, worker
//! queue) the checker must explore at least 10 000 distinct interleavings
//! in under 60 seconds with every invariant holding.
//!
//! The per-model schedule caps below are tuned so the bounded-DFS space of
//! the richest scenarios is actually walked; `Report::schedules` counts
//! only schedules that ran to completion.
#![cfg(feature = "model")]

use mmdb_boundidx::{EpochSlot, EpochStamped};
use mmdb_conc::model::Model;
use mmdb_conc::sync::{Arc, Mutex};
use mmdb_conc::thread;
use mmdb_server::BoundedQueue;
use mmdb_storage::MutationEpoch;
use mmdb_telemetry::{EventKind, FlightRecorder};
use std::time::Instant;

struct Cached {
    stamp: u64,
    value: u64,
}

impl EpochStamped for Cached {
    fn stamp(&self) -> u64 {
        self.stamp
    }
}

/// Storage epoch: one mutator, two epoch-guarded readers of a raw cell.
fn storage_epoch_model() {
    let epoch = Arc::new(MutationEpoch::new());
    let catalog = Arc::new(mmdb_conc::cell::RaceCell::new("catalog row", 0u64));
    let w = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            catalog.set(1);
            epoch.bump();
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
            thread::spawn(move || {
                if epoch.current() >= 1 {
                    assert_eq!(catalog.get(), 1, "stale catalog read");
                }
            })
        })
        .collect();
    w.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// Bound index: one invalidating writer, two re-syncing readers.
fn boundidx_model() {
    let epoch = Arc::new(MutationEpoch::new());
    let catalog = Arc::new(Mutex::new(0u64));
    let slot = Arc::new(EpochSlot::<Cached>::new());
    *slot.write() = Some(Cached { stamp: 0, value: 0 });
    let w = {
        let (epoch, catalog) = (Arc::clone(&epoch), Arc::clone(&catalog));
        thread::spawn(move || {
            *catalog.lock() += 1;
            epoch.bump();
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (epoch, catalog, slot) =
                (Arc::clone(&epoch), Arc::clone(&catalog), Arc::clone(&slot));
            thread::spawn(move || {
                let e = epoch.current();
                let served = slot
                    .serve_fresh(e, |c| (c.value, c.stamp))
                    .unwrap_or_else(|| {
                        let mut guard = slot.write();
                        let e2 = epoch.current();
                        let snap = *catalog.lock();
                        *guard = Some(Cached {
                            stamp: e2,
                            value: snap,
                        });
                        (snap, e2)
                    });
                assert!(served.0 >= served.1, "stale value served as fresh");
            })
        })
        .collect();
    w.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// Recorder ring: three writers lapping a capacity-2 ring, then a drain.
fn ring_model() {
    let rec = Arc::new(FlightRecorder::with_capacity(2));
    let writers: Vec<_> = (1..=3u64)
        .map(|i| {
            let rec = Arc::clone(&rec);
            thread::spawn(move || {
                rec.record(
                    EventKind::QueryStart,
                    format!("writer-{i}"),
                    &[("writer", i)],
                );
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let events = rec.events();
    assert_eq!(events.len(), 2);
    for e in &events {
        let tag = e.counts[0].1;
        assert_eq!(e.detail, format!("writer-{tag}"), "torn event");
    }
}

/// Worker queue: two producers, one consumer, close-then-drain handshake.
fn queue_model() {
    let q = Arc::new(BoundedQueue::new(1));
    let producers: Vec<_> = (1..=2u32)
        .map(|i| {
            let q = Arc::clone(&q);
            thread::spawn(move || q.try_push(i).ok().map(|()| i))
        })
        .collect();
    let consumer = {
        let q = Arc::clone(&q);
        thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q.pop() {
                got.push(v);
            }
            got
        })
    };
    let mut accepted: Vec<u32> = producers
        .into_iter()
        .filter_map(|h| h.join().unwrap())
        .collect();
    q.close();
    let mut got = consumer.join().unwrap();
    accepted.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, accepted, "drain lost or invented a request");
}

#[test]
fn explores_ten_thousand_interleavings_quickly() {
    let start = Instant::now();
    let mut total = 0usize;
    let mut lines = Vec::new();
    let scenarios: [(&str, fn()); 4] = [
        ("storage_epoch", storage_epoch_model),
        ("boundidx", boundidx_model),
        ("ring", ring_model),
        ("queue", queue_model),
    ];
    for (name, scenario) in scenarios {
        let report = Model::new()
            .max_schedules(20_000)
            .random_iters(500)
            .check(scenario);
        report.assert_ok();
        lines.push(format!(
            "{name}: {} schedules, {} ops, exhausted={}",
            report.schedules, report.ops, report.exhausted
        ));
        total += report.schedules;
    }
    let elapsed = start.elapsed();
    eprintln!("{}", lines.join("\n"));
    eprintln!("total: {total} schedules in {elapsed:?}");
    assert!(
        total >= 10_000,
        "expected >= 10k interleavings across the four protocol models, got {total}"
    );
    assert!(
        elapsed.as_secs() < 60,
        "exploration took {elapsed:?}, budget is 60s"
    );
}
